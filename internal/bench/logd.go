package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/totem-rrp/totem/internal/live"
)

// LogdOptions shapes the figure_logd sweep: one clean run measuring
// client-observed commit latency on a healthy cluster, and one with the
// torture schedule (loss burst + kill -9/restart) overlapping the
// measured window. The pair is the headline replicated-log figure: what
// an append costs end to end, and what faults do to the tail.
type LogdOptions struct {
	// Duration is the measured window per point (default 2s).
	Duration time.Duration
	// Clients is the concurrent writer count (default 8).
	Clients int
	// PayloadBytes sizes each record (default 128).
	PayloadBytes int
	// Nodes defaults to 4.
	Nodes int
}

// LogdSweep measures the two figure_logd points on a real cluster:
// healthy, then under torture faults.
func LogdSweep(opt LogdOptions) ([]live.LogdBenchPoint, error) {
	out := make([]live.LogdBenchPoint, 0, 2)
	for _, faults := range []bool{false, true} {
		dur := opt.Duration
		if faults && dur > 0 {
			// The fault schedule needs room for reformation and catch-up
			// inside the window.
			dur *= 2
		}
		p, err := live.LogdBench(live.LogdBenchOptions{
			Nodes:        opt.Nodes,
			Clients:      opt.Clients,
			PayloadBytes: opt.PayloadBytes,
			Duration:     dur,
			Faults:       faults,
		})
		if err != nil {
			return nil, fmt.Errorf("logd bench (faults=%v): %w", faults, err)
		}
		out = append(out, *p)
	}
	return out, nil
}

// LogdGate judges a figure_logd sweep: both points must have committed
// appends, stored zero duplicate identities, and the healthy point's p99
// must sit under the ceiling (the faulted point's tail legitimately
// includes reformation stalls, so only its correctness is gated). It
// returns a human-readable verdict line and whether the gate passed.
func LogdGate(points []live.LogdBenchPoint, p99CeilingMs float64) (string, bool) {
	var healthy, faulted *live.LogdBenchPoint
	for i := range points {
		if points[i].Faults {
			faulted = &points[i]
		} else {
			healthy = &points[i]
		}
	}
	if healthy == nil || faulted == nil {
		return "logd gate: sweep missing healthy or faulted point", false
	}
	if healthy.Appends == 0 || faulted.Appends == 0 {
		return "logd gate: a point committed no appends", false
	}
	if healthy.Duplicates > 0 || faulted.Duplicates > 0 {
		return fmt.Sprintf("logd gate: duplicate appends stored (healthy %d, faulted %d) — FAIL",
			healthy.Duplicates, faulted.Duplicates), false
	}
	ok := healthy.P99LatencyUs > 0 && healthy.P99LatencyUs <= p99CeilingMs*1000
	verdict := fmt.Sprintf(
		"logd gate: healthy p50 %.0fµs p99 %.0fµs (%.0f appends/s), faulted p99 %.0fµs, 0 duplicates (p99 ceiling %.0fms)",
		healthy.P50LatencyUs, healthy.P99LatencyUs, healthy.AppendsPerSec,
		faulted.P99LatencyUs, p99CeilingMs)
	if ok {
		verdict += " — PASS"
	} else {
		verdict += " — FAIL"
	}
	return verdict, ok
}

// PrintLogd renders the figure_logd sweep for the terminal.
func PrintLogd(w io.Writer, points []live.LogdBenchPoint) {
	fmt.Fprintln(w, "replicated log (client-observed append commit latency)")
	fmt.Fprintf(w, "  %-8s %5s %7s %9s %9s %9s %11s %5s\n",
		"faults", "nodes", "clients", "appends", "p50(µs)", "p99(µs)", "appends/s", "dups")
	for _, p := range points {
		fmt.Fprintf(w, "  %-8v %5d %7d %9d %9.0f %9.0f %11.0f %5d\n",
			p.Faults, p.Nodes, p.Clients, p.Appends,
			p.P50LatencyUs, p.P99LatencyUs, p.AppendsPerSec, p.Duplicates)
	}
}
