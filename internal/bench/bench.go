// Package bench regenerates the paper's evaluation (§8): throughput of
// the Totem RRP as a function of message length, for 4- and 6-node rings
// with no replication, active replication and passive replication
// (Figures 6–9), plus the in-text headline claims (≈90% utilization of a
// 100 Mbit/s Ethernet at 1 KB messages; packing peaks at 700/1400 B).
//
// Experiments run on the discrete-event simulator in virtual time, so
// results are deterministic and machine-independent; absolute numbers are
// calibrated to the paper's testbed class, and the *shapes* (who wins, by
// how much, where the crossovers sit) are the reproduction target.
package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/sim"
	"github.com/totem-rrp/totem/internal/stack"
	"github.com/totem-rrp/totem/internal/wire"
)

// Experiment describes one throughput measurement.
type Experiment struct {
	// Name labels the experiment in output.
	Name string
	// Nodes and Networks shape the cluster.
	Nodes    int
	Networks int
	// Style and K select the replication style.
	Style proto.ReplicationStyle
	K     int
	// MsgLen is the application payload size in bytes.
	MsgLen int
	// Warmup and Measure are virtual-time phases; deliveries are counted
	// during Measure only.
	Warmup  time.Duration
	Measure time.Duration
	// Backlog is the per-node send-queue depth the workload generator
	// maintains (saturating senders, like the paper's flow-control-bound
	// experiment).
	Backlog int
	// Tune optionally adjusts the protocol stack (ablations).
	Tune func(id proto.NodeID, c *stack.Config)
	// Net and Host override the default simulator models when non-zero.
	Net  sim.NetworkParams
	Host sim.NodeParams
	// Seed makes runs reproducible.
	Seed int64
}

// Result is one measurement.
type Result struct {
	Experiment

	// MsgsPerSec is the system-wide totally-ordered delivery rate (the
	// paper's "total send rate of the system").
	MsgsPerSec float64
	// KBytesPerSec is the corresponding payload bandwidth.
	KBytesPerSec float64
	// Utilization is the share of one network's raw bit rate consumed by
	// delivered payload plus framing (the paper's ~90% headline metric).
	Utilization float64
	// Retransmissions counts packets re-broadcast during Measure.
	Retransmissions uint64
}

// defaults fills unset experiment fields.
func (e Experiment) defaults() Experiment {
	if e.Warmup == 0 {
		e.Warmup = 300 * time.Millisecond
	}
	if e.Measure == 0 {
		e.Measure = time.Second
	}
	if e.Backlog == 0 {
		e.Backlog = 64
	}
	if e.Net == (sim.NetworkParams{}) {
		e.Net = sim.DefaultNetworkParams()
	}
	if e.Host == (sim.NodeParams{}) {
		e.Host = sim.DefaultNodeParams()
	}
	if e.Seed == 0 {
		e.Seed = 1
	}
	return e
}

// Run executes one experiment.
func Run(e Experiment) (Result, error) {
	e = e.defaults()
	cluster, err := sim.NewCluster(sim.Config{
		Nodes:    e.Nodes,
		Networks: e.Networks,
		Style:    e.Style,
		K:        e.K,
		Net:      e.Net,
		Host:     e.Host,
		Seed:     e.Seed,
		TuneSRP: func(id proto.NodeID, c *stack.Config) {
			c.SRP.MaxQueued = 4 * e.Backlog
			if e.Tune != nil {
				e.Tune(id, c)
			}
		},
	})
	if err != nil {
		return Result{}, fmt.Errorf("bench: %w", err)
	}
	for _, id := range cluster.NodeIDs() {
		cluster.Node(id).KeepPayloads = false
	}
	cluster.Start()
	formed := cluster.RunUntil(func() bool {
		for _, id := range cluster.NodeIDs() {
			n := cluster.Node(id).Stack.SRP()
			if len(n.Members()) != e.Nodes {
				return false
			}
		}
		return true
	}, 10*time.Millisecond, 10*time.Second)
	if !formed {
		return Result{}, fmt.Errorf("bench: ring never formed for %q", e.Name)
	}

	// Saturating workload: a refill pump keeps every node's send queue at
	// the target backlog.
	payload := make([]byte, e.MsgLen)
	var pump func()
	pump = func() {
		for _, id := range cluster.NodeIDs() {
			n := cluster.Node(id)
			for i := 0; i < e.Backlog && n.Stack.Backlog() < e.Backlog; i++ {
				if !cluster.Submit(id, payload) {
					break
				}
			}
		}
		cluster.Sim.After(time.Millisecond, pump)
	}
	cluster.Sim.After(0, pump)

	cluster.Run(e.Warmup)
	probe := cluster.Node(cluster.NodeIDs()[0])
	startMsgs := probe.DeliveredCount
	startBytes := probe.DeliveredBytes
	var startRetrans uint64
	for _, id := range cluster.NodeIDs() {
		startRetrans += cluster.Node(id).Stack.SRP().Stats().Retransmissions
	}

	cluster.Run(e.Measure)

	msgs := probe.DeliveredCount - startMsgs
	bytes := probe.DeliveredBytes - startBytes
	var retrans uint64
	for _, id := range cluster.NodeIDs() {
		retrans += cluster.Node(id).Stack.SRP().Stats().Retransmissions
	}
	retrans -= startRetrans

	secs := e.Measure.Seconds()
	res := Result{
		Experiment:      e,
		MsgsPerSec:      float64(msgs) / secs,
		KBytesPerSec:    float64(bytes) / secs / 1024,
		Retransmissions: retrans,
	}
	if e.Net.BandwidthBits > 0 {
		// Approximate wire bits: payload plus per-packet framing,
		// amortised by the packing ratio.
		packets := wire.PacketsFor(e.MsgLen, int(msgs))
		wireBits := (float64(bytes) + float64(packets)*float64(wire.FrameOverhead)) * 8
		res.Utilization = wireBits / secs / float64(e.Net.BandwidthBits)
	}
	return res, nil
}

// Series is a labelled sweep over message lengths.
type Series struct {
	Label   string
	Results []Result
}

// PaperLengths is the message-length sweep of Figures 6–9 (log-spaced
// from 100 B to 10 KB, with extra points at the packing peaks).
var PaperLengths = []int{100, 150, 200, 300, 400, 500, 700, 712, 1000, 1400, 1424, 2000, 3000, 5000, 7000, 10000}

// SweepLengths runs base across the given message lengths.
func SweepLengths(base Experiment, lengths []int) (Series, error) {
	s := Series{Label: base.Name}
	for _, l := range lengths {
		e := base
		e.MsgLen = l
		e.Name = fmt.Sprintf("%s/%dB", base.Name, l)
		r, err := Run(e)
		if err != nil {
			return Series{}, err
		}
		s.Results = append(s.Results, r)
	}
	return s, nil
}

// PrintTable renders series side by side: one row per message length, one
// column pair per series (msgs/sec and KB/s), matching the data behind
// the paper's figure pairs (6+8 and 7+9).
func PrintTable(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s", "len(B)")
	for _, s := range series {
		fmt.Fprintf(w, " | %13s msgs/s %10s KB/s", s.Label, "")
	}
	fmt.Fprintln(w)
	if len(series) == 0 || len(series[0].Results) == 0 {
		return
	}
	for i := range series[0].Results {
		fmt.Fprintf(w, "%-10d", series[0].Results[i].MsgLen)
		for _, s := range series {
			r := s.Results[i]
			fmt.Fprintf(w, " | %20.0f %15.0f", r.MsgsPerSec, r.KBytesPerSec)
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV writes series as a CSV file: one row per message length, two
// columns (msgs/sec, KB/s) per series — directly loadable by gnuplot or a
// spreadsheet to re-plot the paper's figures.
func WriteCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprint(w, "len_bytes"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, ",%s_msgs_per_sec,%s_kbytes_per_sec", s.Label, s.Label); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if len(series) == 0 {
		return nil
	}
	for i := range series[0].Results {
		if _, err := fmt.Fprintf(w, "%d", series[0].Results[i].MsgLen); err != nil {
			return err
		}
		for _, s := range series {
			r := s.Results[i]
			if _, err := fmt.Fprintf(w, ",%.1f,%.1f", r.MsgsPerSec, r.KBytesPerSec); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
