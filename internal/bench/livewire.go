package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/totem-rrp/totem/internal/live"
	"github.com/totem-rrp/totem/internal/transport"
)

// LiveWireOptions shapes the live Figure 6 analog sweep: the same
// 4-node × 2-network cluster as the paper's testbed figure, run on real
// loopback sockets once per available wire path so the two drivers are
// compared inside a single process on identical hardware.
type LiveWireOptions struct {
	// Duration is the measured window per wire path (default 2s).
	Duration time.Duration
	// MsgLen is the payload size (default 100 bytes, the Figure 6 left
	// edge where per-message kernel cost dominates).
	MsgLen int
	// Nodes and Networks default to 4 and 2.
	Nodes    int
	Networks int
}

// LiveWire measures the live wire-path points: always the portable
// driver, plus the batched driver where the platform has it.
func LiveWire(opt LiveWireOptions) ([]live.WireBenchPoint, error) {
	paths := []string{transport.WirePathPortable}
	if transport.BatchSupported() {
		paths = append(paths, transport.WirePathBatch)
	}
	out := make([]live.WireBenchPoint, 0, len(paths))
	for _, path := range paths {
		p, err := live.WireBench(live.WireBenchOptions{
			Nodes:    opt.Nodes,
			Networks: opt.Networks,
			MsgLen:   opt.MsgLen,
			Duration: opt.Duration,
			WirePath: path,
		})
		if err != nil {
			return nil, fmt.Errorf("live wire bench (%s): %w", path, err)
		}
		out = append(out, *p)
	}
	return out, nil
}

// LiveWireGate judges a measured sweep against the wire-path acceptance
// bar: the batched driver must deliver at least msgsGain× the portable
// throughput OR cut syscalls per ordered message by at least
// syscallGain×. floor, when positive, additionally requires the batched
// driver to clear an absolute msgs/sec bar. It returns a human-readable
// verdict line and whether the gate passed; a sweep without a batch
// point (non-Linux) passes vacuously so one CI invocation fits every
// platform.
func LiveWireGate(points []live.WireBenchPoint, msgsGain, syscallGain, floor float64) (string, bool) {
	var portable, batch *live.WireBenchPoint
	for i := range points {
		switch points[i].WirePath {
		case transport.WirePathPortable:
			portable = &points[i]
		case transport.WirePathBatch:
			batch = &points[i]
		}
	}
	if batch == nil {
		return "live wire gate: no batched driver on this platform (vacuous pass)", true
	}
	if portable == nil {
		return "live wire gate: no portable baseline point", false
	}
	msgsRatio := 0.0
	if portable.MsgsPerSec > 0 {
		msgsRatio = batch.MsgsPerSec / portable.MsgsPerSec
	}
	syscallRatio := 0.0
	if batch.SyscallsPerMsg > 0 {
		syscallRatio = portable.SyscallsPerMsg / batch.SyscallsPerMsg
	}
	ok := msgsRatio >= msgsGain || syscallRatio >= syscallGain
	if floor > 0 && batch.MsgsPerSec < floor {
		ok = false
	}
	verdict := fmt.Sprintf(
		"live wire gate: batch %.0f msgs/s vs portable %.0f (%.2fx), syscalls/msg %.1f vs %.1f (%.2fx fewer)",
		batch.MsgsPerSec, portable.MsgsPerSec, msgsRatio,
		batch.SyscallsPerMsg, portable.SyscallsPerMsg, syscallRatio)
	if floor > 0 {
		verdict += fmt.Sprintf(", floor %.0f", floor)
	}
	if ok {
		verdict += " — PASS"
	} else {
		verdict += fmt.Sprintf(" — FAIL (need %.1fx msgs or %.1fx fewer syscalls)", msgsGain, syscallGain)
	}
	return verdict, ok
}

// PrintLiveWire renders the live wire sweep for the terminal.
func PrintLiveWire(w io.Writer, points []live.WireBenchPoint) {
	fmt.Fprintln(w, "figure 6 live analog (real loopback UDP, wall clock)")
	fmt.Fprintf(w, "  %-10s %6s %4s %9s %10s %12s %9s %9s %9s\n",
		"wirepath", "len(B)", "n×N", "msgs/s", "KB/s", "syscall/msg", "p50(µs)", "p99(µs)", "txerr")
	for _, p := range points {
		fmt.Fprintf(w, "  %-10s %6d %dx%d %9.0f %10.1f %12.2f %9.0f %9.0f %9d\n",
			p.WirePath, p.MsgLen, p.Nodes, p.Networks,
			p.MsgsPerSec, p.KBPerSec, p.SyscallsPerMsg,
			p.P50LatencyUs, p.P99LatencyUs, p.TxErrors)
	}
}
