package bench

import (
	"fmt"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/sim"
	"github.com/totem-rrp/totem/internal/stack"
)

// Ablations sweep the design parameters the paper leaves implicit, to
// show how sensitive the headline results are to each choice. Every
// ablation runs the 4-node, 1 KB configuration of the headline
// experiment, varying exactly one knob.

// ablationBase is the reference point shared by all sweeps.
func ablationBase(style proto.ReplicationStyle, networks int) Experiment {
	return Experiment{
		Nodes:    4,
		Networks: networks,
		Style:    style,
		MsgLen:   1024,
	}
}

// AblateWindowSize sweeps the flow-control window (packets in flight per
// rotation). Too small starves the wire; beyond the knee the extra
// window only adds latency.
func AblateWindowSize(windows []int) (Series, error) {
	s := Series{Label: "window-size"}
	for _, w := range windows {
		e := ablationBase(proto.ReplicationNone, 1)
		e.Name = fmt.Sprintf("window=%d", w)
		window := w
		e.Tune = func(id proto.NodeID, c *stack.Config) {
			c.SRP.WindowSize = window
			if c.SRP.MaxPerVisit > window {
				c.SRP.MaxPerVisit = window
			}
		}
		r, err := Run(e)
		if err != nil {
			return Series{}, err
		}
		r.MsgLen = window // reuse the table's first column for the knob
		s.Results = append(s.Results, r)
	}
	return s, nil
}

// AblateMaxPerVisit sweeps the per-token-visit send cap. Small caps make
// rotations cheap but frequent; large caps batch sends at the cost of
// per-visit latency for the other members.
func AblateMaxPerVisit(caps []int) (Series, error) {
	s := Series{Label: "max-per-visit"}
	for _, v := range caps {
		e := ablationBase(proto.ReplicationNone, 1)
		e.Name = fmt.Sprintf("visit=%d", v)
		visit := v
		e.Tune = func(id proto.NodeID, c *stack.Config) {
			c.SRP.MaxPerVisit = visit
			if c.SRP.WindowSize < visit {
				c.SRP.WindowSize = visit
			}
		}
		r, err := Run(e)
		if err != nil {
			return Series{}, err
		}
		r.MsgLen = visit
		s.Results = append(s.Results, r)
	}
	return s, nil
}

// AblateRRPTokenTimeout sweeps the active-replication token gather
// timeout under 1% loss on one network: too short releases tokens before
// slow copies arrive (wasting the masking benefit and charging problem
// counters); too long stalls every rotation that loses a copy.
func AblateRRPTokenTimeout(timeouts []time.Duration) (Series, error) {
	s := Series{Label: "rrp-token-timeout"}
	for _, d := range timeouts {
		e := ablationBase(proto.ReplicationActive, 2)
		e.Name = fmt.Sprintf("timeout=%v", d)
		timeout := d
		e.Tune = func(id proto.NodeID, c *stack.Config) {
			c.RRP.TokenTimeout = timeout
		}
		e.Net = DefaultLossyNet(0.01)
		r, err := Run(e)
		if err != nil {
			return Series{}, err
		}
		r.MsgLen = int(d / time.Millisecond)
		s.Results = append(s.Results, r)
	}
	return s, nil
}

// AblateK sweeps the active-passive copy count on four networks: K=2
// halves the per-network load vs K=3; K close to N converges on active
// replication.
func AblateK(ks []int) (Series, error) {
	s := Series{Label: "active-passive-K"}
	for _, k := range ks {
		e := ablationBase(proto.ReplicationActivePassive, 4)
		e.Name = fmt.Sprintf("K=%d", k)
		e.K = k
		r, err := Run(e)
		if err != nil {
			return Series{}, err
		}
		r.MsgLen = k
		s.Results = append(s.Results, r)
	}
	return s, nil
}

// AblateRingSize sweeps the member count at 1 KB messages, showing the
// token ring's scalability plateau (aggregate rate is wire-bound and
// nearly flat; per-node share divides).
func AblateRingSize(sizes []int) (Series, error) {
	s := Series{Label: "ring-size"}
	for _, n := range sizes {
		e := ablationBase(proto.ReplicationNone, 1)
		e.Nodes = n
		e.Name = fmt.Sprintf("nodes=%d", n)
		r, err := Run(e)
		if err != nil {
			return Series{}, err
		}
		r.MsgLen = n
		s.Results = append(s.Results, r)
	}
	return s, nil
}

// DefaultLossyNet returns the default network model with a loss rate.
func DefaultLossyNet(p float64) sim.NetworkParams {
	np := sim.DefaultNetworkParams()
	np.LossProb = p
	return np
}
