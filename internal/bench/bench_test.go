package bench

import (
	"strings"
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
)

// shapeLengths is the reduced sweep used by the shape tests (full sweeps
// run in the benchmarks and cmd/totembench).
var shapeLengths = []int{700, 1000, 1400}

func TestHeadlineUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := Headline(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.MsgsPerSec < 9000 {
		t.Fatalf("headline = %.0f msgs/sec, paper reports >9000", r.MsgsPerSec)
	}
	if r.Utilization < 0.80 || r.Utilization > 1.0 {
		t.Fatalf("utilization = %.2f, paper reports ~0.90", r.Utilization)
	}
}

func TestFigureShapes4Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	series, err := Figure(4, shapeLengths)
	if err != nil {
		t.Fatal(err)
	}
	shapes, err := Shapes(series)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shapes {
		if !s.ActiveBelowNone {
			t.Errorf("len %d: active (%.0f) above no-replication (%.0f); paper §8 says active pays for the duplicated stack calls", s.Len, s.Active, s.None)
		}
		if !s.PassiveAboveNone {
			t.Errorf("len %d: passive (%.0f) below no-replication (%.0f); paper §8 says passive exceeds the unreplicated system", s.Len, s.Passiv, s.None)
		}
		if !s.PassiveBelowTwiceNone {
			t.Errorf("len %d: passive (%.0f) not below 2x no-replication (%.0f); paper §8 says CPU keeps it under the doubled wire rate", s.Len, s.Passiv, s.None)
		}
	}
}

func TestFigureShapes6Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	series, err := Figure(6, []int{1000})
	if err != nil {
		t.Fatal(err)
	}
	shapes, err := Shapes(series)
	if err != nil {
		t.Fatal(err)
	}
	s := shapes[0]
	if !s.ActiveBelowNone || !s.PassiveAboveNone || !s.PassiveBelowTwiceNone {
		t.Fatalf("6-node shape violated: %+v", s)
	}
}

func TestPackingSawtooth(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s, err := Sawtooth(4)
	if err != nil {
		t.Fatal(err)
	}
	rate := map[int]Result{}
	for _, r := range s.Results {
		rate[r.MsgLen] = r
	}
	// Peak at 700 B: two messages pack into one frame; at 710/730 B only
	// one fits, so the message rate collapses.
	if rate[700].MsgsPerSec <= rate[730].MsgsPerSec {
		t.Errorf("no sawtooth at 700B: %.0f vs %.0f msgs/sec", rate[700].MsgsPerSec, rate[730].MsgsPerSec)
	}
	// Peak at ~1400 B: a near-full single frame beats a just-fragmented
	// message in bandwidth terms.
	if rate[1400].KBytesPerSec <= rate[1440].KBytesPerSec {
		t.Errorf("no sawtooth at 1400B: %.0f vs %.0f KB/s", rate[1400].KBytesPerSec, rate[1440].KBytesPerSec)
	}
}

func TestActivePassiveRunsOnThreeNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s, err := ActivePassiveSweep(4, 2, []int{1000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Results[0].MsgsPerSec <= 0 {
		t.Fatal("active-passive produced no throughput")
	}
}

func TestRunRejectsBadExperiment(t *testing.T) {
	_, err := Run(Experiment{Name: "bad", Nodes: 0, Networks: 1, Style: proto.ReplicationNone, MsgLen: 100})
	if err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestPrintTableRendersAllRows(t *testing.T) {
	series := []Series{{
		Label: "demo",
		Results: []Result{
			{Experiment: Experiment{MsgLen: 100}, MsgsPerSec: 10, KBytesPerSec: 1},
			{Experiment: Experiment{MsgLen: 200}, MsgsPerSec: 20, KBytesPerSec: 4},
		},
	}}
	var sb strings.Builder
	PrintTable(&sb, "title", series)
	out := sb.String()
	for _, want := range []string{"title", "100", "200", "demo"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationWindowSizeKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s, err := AblateWindowSize([]int{4, 80})
	if err != nil {
		t.Fatal(err)
	}
	small, large := s.Results[0].MsgsPerSec, s.Results[1].MsgsPerSec
	if small >= large {
		t.Fatalf("tiny window (%.0f) should underperform the default (%.0f)", small, large)
	}
}

func TestAblationRingSizeAggregateStable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s, err := AblateRingSize([]int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	two, eight := s.Results[0].MsgsPerSec, s.Results[1].MsgsPerSec
	// The wire-bound aggregate rate must not collapse as the ring grows.
	if eight < two*0.7 {
		t.Fatalf("aggregate rate collapsed with ring size: 2 nodes %.0f vs 8 nodes %.0f", two, eight)
	}
}

func TestAblationKOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s, err := AblateK([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	k2, k3 := s.Results[0].MsgsPerSec, s.Results[1].MsgsPerSec
	// More copies, more per-network load: K=3 must not beat K=2.
	if k3 > k2*1.02 {
		t.Fatalf("K=3 (%.0f) outperformed K=2 (%.0f)", k3, k2)
	}
}

func TestWriteCSV(t *testing.T) {
	series := []Series{
		{Label: "a", Results: []Result{
			{Experiment: Experiment{MsgLen: 100}, MsgsPerSec: 10, KBytesPerSec: 1},
			{Experiment: Experiment{MsgLen: 200}, MsgsPerSec: 20, KBytesPerSec: 4},
		}},
		{Label: "b", Results: []Result{
			{Experiment: Experiment{MsgLen: 100}, MsgsPerSec: 11, KBytesPerSec: 2},
			{Experiment: Experiment{MsgLen: 200}, MsgsPerSec: 21, KBytesPerSec: 5},
		}},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), sb.String())
	}
	if lines[0] != "len_bytes,a_msgs_per_sec,a_kbytes_per_sec,b_msgs_per_sec,b_kbytes_per_sec" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "100,10.0,1.0,11.0,2.0" {
		t.Fatalf("row = %q", lines[1])
	}
}
