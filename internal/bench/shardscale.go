package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/totem-rrp/totem/internal/live"
)

// ShardScaleOptions shapes the multi-ring scaling sweep: the same
// 4-node × 2-network cluster measured at 1 ring and at M rings, on a
// latency-floored in-memory wire so the single ring is rotation-bound
// (the paper's LAN regime) rather than CPU-bound.
type ShardScaleOptions struct {
	// Shards is the high point M of the sweep (default 4).
	Shards int
	// Duration is the measured window per point (default 1s).
	Duration time.Duration
	// MsgLen is the payload size (default 100 bytes).
	MsgLen int
	// Nodes and Networks default to 4 and 2.
	Nodes    int
	Networks int
}

// ShardScale measures the sharding sweep: a single-ring baseline, then
// the M-ring point, under identical cluster shape and load style.
func ShardScale(opt ShardScaleOptions) ([]live.ShardBenchPoint, error) {
	if opt.Shards <= 0 {
		opt.Shards = 4
	}
	counts := []int{1}
	if opt.Shards > 1 {
		counts = append(counts, opt.Shards)
	}
	out := make([]live.ShardBenchPoint, 0, len(counts))
	for _, m := range counts {
		p, err := live.ShardBench(live.ShardBenchOptions{
			Nodes:    opt.Nodes,
			Networks: opt.Networks,
			Shards:   m,
			MsgLen:   opt.MsgLen,
			Duration: opt.Duration,
		})
		if err != nil {
			return nil, fmt.Errorf("shard bench (M=%d): %w", m, err)
		}
		out = append(out, *p)
	}
	return out, nil
}

// ShardGate judges a measured sweep against the sharding acceptance bar:
// the M-ring point must deliver at least gain× the single-ring aggregate
// throughput. It returns a human-readable verdict line and whether the
// gate passed.
func ShardGate(points []live.ShardBenchPoint, gain float64) (string, bool) {
	var base, high *live.ShardBenchPoint
	for i := range points {
		if points[i].Shards == 1 {
			base = &points[i]
		} else if high == nil || points[i].Shards > high.Shards {
			high = &points[i]
		}
	}
	if base == nil {
		return "shard gate: no single-ring baseline point", false
	}
	if high == nil {
		return "shard gate: no multi-ring point", false
	}
	ratio := 0.0
	if base.MsgsPerSec > 0 {
		ratio = high.MsgsPerSec / base.MsgsPerSec
	}
	ok := ratio >= gain
	verdict := fmt.Sprintf(
		"shard gate: %d rings %.0f msgs/s vs 1 ring %.0f (%.2fx)",
		high.Shards, high.MsgsPerSec, base.MsgsPerSec, ratio)
	if ok {
		verdict += " — PASS"
	} else {
		verdict += fmt.Sprintf(" — FAIL (need %.1fx)", gain)
	}
	return verdict, ok
}

// PrintShardScale renders the sharding sweep for the terminal.
func PrintShardScale(w io.Writer, points []live.ShardBenchPoint) {
	fmt.Fprintln(w, "multi-ring sharding scaling (mem wire, uniform latency floor)")
	fmt.Fprintf(w, "  %-6s %6s %4s %9s %10s  %s\n",
		"shards", "len(B)", "n×N", "msgs/s", "KB/s", "per-shard msgs/s")
	for _, p := range points {
		per := ""
		for i, v := range p.PerShardMsgsPerSec {
			if i > 0 {
				per += " "
			}
			per += fmt.Sprintf("%.0f", v)
		}
		fmt.Fprintf(w, "  %-6d %6d %dx%d %9.0f %10.1f  [%s]\n",
			p.Shards, p.MsgLen, p.Nodes, p.Networks,
			p.MsgsPerSec, p.KBPerSec, per)
	}
}
