package bench

import (
	"fmt"
	"io"

	"github.com/totem-rrp/totem/internal/proto"
)

// FigureStyles are the three configurations compared in Figures 6–9.
func FigureStyles(nodes int) []Experiment {
	return []Experiment{
		{Name: "no-replication", Nodes: nodes, Networks: 1, Style: proto.ReplicationNone},
		{Name: "active", Nodes: nodes, Networks: 2, Style: proto.ReplicationActive},
		{Name: "passive", Nodes: nodes, Networks: 2, Style: proto.ReplicationPassive},
	}
}

// Figure runs the full sweep behind one of the paper's figure pairs:
// figures 6 and 8 share the 4-node data, figures 7 and 9 the 6-node data
// (they plot msgs/sec and KB/s respectively).
func Figure(nodes int, lengths []int) ([]Series, error) {
	var out []Series
	for _, base := range FigureStyles(nodes) {
		s, err := SweepLengths(base, lengths)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Headline reproduces the §2/§8 claim: with no replication and 1 KB
// messages, the ring drives a 100 Mbit/s Ethernet to roughly 90%
// utilization (more than 9000 msgs/sec).
func Headline(nodes int) (Result, error) {
	e := Experiment{
		Name:     "headline-utilization",
		Nodes:    nodes,
		Networks: 1,
		Style:    proto.ReplicationNone,
		MsgLen:   1024,
	}
	return Run(e)
}

// Sawtooth reproduces the §8 packing observation: throughput peaks at
// message lengths of 700 and 1400 bytes because those make optimal use of
// the 1424-byte Ethernet frame payload; just past each peak the rate
// drops sharply.
func Sawtooth(nodes int) (Series, error) {
	lengths := []int{650, 700, 710, 730, 800, 1300, 1400, 1421, 1440, 1500}
	base := Experiment{
		Name:     "packing-sawtooth",
		Nodes:    nodes,
		Networks: 1,
		Style:    proto.ReplicationNone,
	}
	return SweepLengths(base, lengths)
}

// ActivePassiveSweep measures the §7 style on three networks for a range
// of message lengths (the paper could not run this experiment for lack of
// a third network; we can).
func ActivePassiveSweep(nodes, k int, lengths []int) (Series, error) {
	base := Experiment{
		Name:     fmt.Sprintf("active-passive-K%d", k),
		Nodes:    nodes,
		Networks: 3,
		Style:    proto.ReplicationActivePassive,
		K:        k,
	}
	return SweepLengths(base, lengths)
}

// ShapeReport captures the qualitative relationships the paper reports
// for one message length (used by tests and EXPERIMENTS.md): active stays
// below no-replication, passive above it but under 2x.
type ShapeReport struct {
	Len                   int
	None, Active, Passiv  float64
	ActiveBelowNone       bool
	PassiveAboveNone      bool
	PassiveBelowTwiceNone bool
}

// Shapes aligns three series (no-replication, active, passive) and
// evaluates the paper's ordering claims per message length.
func Shapes(series []Series) ([]ShapeReport, error) {
	if len(series) != 3 {
		return nil, fmt.Errorf("bench: want 3 series, have %d", len(series))
	}
	none, act, pas := series[0], series[1], series[2]
	if len(none.Results) != len(act.Results) || len(none.Results) != len(pas.Results) {
		return nil, fmt.Errorf("bench: series lengths differ")
	}
	var out []ShapeReport
	for i := range none.Results {
		n, a, p := none.Results[i], act.Results[i], pas.Results[i]
		out = append(out, ShapeReport{
			Len:                   n.MsgLen,
			None:                  n.MsgsPerSec,
			Active:                a.MsgsPerSec,
			Passiv:                p.MsgsPerSec,
			ActiveBelowNone:       a.MsgsPerSec < n.MsgsPerSec*1.02,
			PassiveAboveNone:      p.MsgsPerSec > n.MsgsPerSec*0.98,
			PassiveBelowTwiceNone: p.MsgsPerSec < n.MsgsPerSec*2.0,
		})
	}
	return out, nil
}

// PrintHeadline renders the headline result.
func PrintHeadline(w io.Writer, r Result) {
	fmt.Fprintf(w, "headline (paper §2/§8): %d nodes, no replication, %d B messages\n",
		r.Nodes, r.MsgLen)
	fmt.Fprintf(w, "  %8.0f msgs/sec   %8.0f KB/s   utilization %.1f%%  (paper: >9000 msgs/sec, ~90%%)\n",
		r.MsgsPerSec, r.KBytesPerSec, 100*r.Utilization)
}
