package core

import (
	"errors"
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
)

func newAPForTest(t *testing.T, rec *recorder, networks, k int) *activePassive {
	t.Helper()
	cfg := DefaultConfig(networks, proto.ReplicationActivePassive)
	cfg.K = k
	rep, err := New(cfg, &rec.acts, rec.callbacks())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ap, ok := rep.(*activePassive)
	if !ok {
		t.Fatalf("want *activePassive, got %T", rep)
	}
	return ap
}

func TestActivePassiveSendsKCopies(t *testing.T) {
	rec := &recorder{}
	ap := newAPForTest(t, rec, 3, 2)
	ap.SendMessage(dataBytes(t, 1, 1))
	counts := rec.drainSends(t, 3)
	total := counts[0] + counts[1] + counts[2]
	if total != 2 {
		t.Fatalf("sends = %v, want K=2 copies", counts)
	}
}

func TestActivePassiveWindowAdvancesRoundRobin(t *testing.T) {
	// Paper §7: after sending via n^m, the next send uses networks
	// n^(m+1..m+K). Over N sends the load is perfectly balanced.
	rec := &recorder{}
	ap := newAPForTest(t, rec, 3, 2)
	for i := 0; i < 3; i++ {
		ap.SendMessage(dataBytes(t, 1, uint32(i+1)))
	}
	if got := rec.drainSends(t, 3); got[0] != 2 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("sends = %v, want 2 per network over a full rotation", got)
	}
}

func TestActivePassiveGatesTokenOnKCopies(t *testing.T) {
	rec := &recorder{}
	ap := newAPForTest(t, rec, 3, 2)
	tok := tokenBytes(t, 10, 0)
	ap.OnPacket(0, 0, tok)
	if len(rec.delivered) != 0 {
		t.Fatal("token delivered after 1 of K=2 copies")
	}
	ap.OnPacket(0, 2, tok)
	if len(rec.delivered) != 1 {
		t.Fatalf("token not delivered after K copies: %d", len(rec.delivered))
	}
	// A third (stray) copy is ignored.
	ap.OnPacket(0, 1, tok)
	if len(rec.delivered) != 1 {
		t.Fatal("extra copy delivered twice")
	}
}

func TestActivePassiveTimeoutReleasesToken(t *testing.T) {
	rec := &recorder{}
	ap := newAPForTest(t, rec, 3, 2)
	ap.OnPacket(0, 1, tokenBytes(t, 10, 0))
	ap.OnTimer(0, proto.TimerID{Class: proto.TimerRRPToken})
	if len(rec.delivered) != 1 {
		t.Fatal("timeout did not release token")
	}
	if ap.Stats().TokensTimedOut != 1 {
		t.Fatalf("TokensTimedOut = %d", ap.Stats().TokensTimedOut)
	}
}

func TestActivePassiveMessagesPassThrough(t *testing.T) {
	rec := &recorder{}
	ap := newAPForTest(t, rec, 3, 2)
	msg := dataBytes(t, 4, 7)
	ap.OnPacket(0, 0, msg)
	ap.OnPacket(0, 1, msg)
	if len(rec.delivered) != 2 {
		t.Fatalf("deliveries = %d; duplicates are the SRP's concern (paper §7)", len(rec.delivered))
	}
}

func TestActivePassiveFaultReducesEffectiveK(t *testing.T) {
	rec := &recorder{}
	ap := newAPForTest(t, rec, 3, 2)
	ap.fault[0] = true
	ap.fault[1] = true
	// Only one usable network: sends collapse to one copy and the token
	// gate accepts a single copy.
	ap.SendMessage(dataBytes(t, 1, 1))
	counts := rec.drainSends(t, 3)
	if counts[0] != 0 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("sends = %v", counts)
	}
	ap.OnPacket(0, 2, tokenBytes(t, 5, 0))
	if len(rec.delivered) != 1 {
		t.Fatal("token gated forever with effective K reduced")
	}
}

func TestActivePassiveMonitorFlagsDeadNetwork(t *testing.T) {
	rec := &recorder{}
	ap := newAPForTest(t, rec, 3, 2)
	var seq uint32
	for i := 0; i <= ap.cfg.DiffThreshold*2; i++ {
		seq++
		ap.OnPacket(0, i%2, dataBytes(t, 3, seq)) // network 2 silent
	}
	faults := rec.drainFaults()
	if len(faults) != 1 || faults[0].Network != 2 {
		t.Fatalf("faults = %v, want network 2", faults)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr error
	}{
		{"valid active", func(c *Config) {}, nil},
		{"zero networks", func(c *Config) { c.Networks = 0 }, ErrBadNetworks},
		{"active one network", func(c *Config) { c.Networks = 1 }, ErrBadNetworks},
		{"bad style", func(c *Config) { c.Style = 0 }, ErrBadStyle},
		{"zero timeout", func(c *Config) { c.TokenTimeout = 0 }, ErrBadTimer},
		{"zero hold", func(c *Config) { c.TokenHold = 0 }, ErrBadTimer},
		{"zero decay", func(c *Config) { c.DecayInterval = 0 }, ErrBadTimer},
		{"zero problem threshold", func(c *Config) { c.ProblemThreshold = 0 }, ErrBadTimer},
		{"zero diff threshold", func(c *Config) { c.DiffThreshold = 0 }, ErrBadTimer},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(2, proto.ReplicationActive)
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == nil && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("Validate = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestConfigValidationActivePassive(t *testing.T) {
	cfg := DefaultConfig(2, proto.ReplicationActivePassive)
	if err := cfg.Validate(); !errors.Is(err, ErrBadNetworks) {
		t.Fatalf("2 networks must be rejected for active-passive (paper §7): %v", err)
	}
	cfg = DefaultConfig(3, proto.ReplicationActivePassive)
	cfg.K = 1
	if err := cfg.Validate(); !errors.Is(err, ErrBadK) {
		t.Fatalf("K=1 must be rejected: %v", err)
	}
	cfg.K = 3
	if err := cfg.Validate(); !errors.Is(err, ErrBadK) {
		t.Fatalf("K=N must be rejected: %v", err)
	}
	cfg.K = 2
	if err := cfg.Validate(); err != nil {
		t.Fatalf("K=2, N=3 must be accepted: %v", err)
	}
}

func TestNewRejectsNilCallbacks(t *testing.T) {
	var acts proto.Actions
	cfg := DefaultConfig(2, proto.ReplicationActive)
	if _, err := New(cfg, &acts, Callbacks{}); err == nil {
		t.Fatal("nil callbacks accepted")
	}
	if _, err := New(cfg, nil, Callbacks{Deliver: func(proto.Time, []byte) {}, Missing: func(uint32) bool { return false }}); err == nil {
		t.Fatal("nil action buffer accepted")
	}
}

func TestNoneBaselineUsesNetworkZero(t *testing.T) {
	rec := &recorder{}
	cfg := DefaultConfig(1, proto.ReplicationNone)
	rep, err := New(cfg, &rec.acts, rec.callbacks())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep.SendMessage(dataBytes(t, 1, 1))
	rep.SendToken(2, tokenBytes(t, 1, 0))
	for _, a := range rec.acts.Drain() {
		if sp, ok := a.(*proto.SendPacket); ok && sp.Network != 0 {
			t.Fatalf("baseline sent on network %d", sp.Network)
		}
	}
	rep.OnPacket(0, 0, dataBytes(t, 2, 2))
	if len(rec.delivered) != 1 {
		t.Fatal("baseline did not pass packet up")
	}
}

func TestReadmitClearsFaultAndMonitors(t *testing.T) {
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 2)
	var seq uint32
	for i := 0; i <= p.cfg.DiffThreshold; i++ {
		seq++
		p.OnPacket(0, 0, dataBytes(t, 3, seq))
	}
	if f := p.Faulty(); !f[1] {
		t.Fatal("setup: network 1 not faulted")
	}
	p.Readmit(1)
	if f := p.Faulty(); f[1] {
		t.Fatal("readmit did not clear the fault")
	}
	// A single further reception on network 0 must not instantly re-fault
	// network 1: its counter was reset to the maximum.
	rec.acts.Drain()
	seq++
	p.OnPacket(0, 0, dataBytes(t, 3, seq))
	if f := p.Faulty(); f[1] {
		t.Fatal("readmitted network instantly re-faulted")
	}
	// Sends use it again.
	p.SendMessage(dataBytes(t, 1, seq+1))
	p.SendMessage(dataBytes(t, 1, seq+2))
	counts := rec.drainSends(t, 2)
	if counts[1] == 0 {
		t.Fatalf("sends after readmit = %v, want round robin over both", counts)
	}
}

func TestReadmitActiveUnblocksTokenGate(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	a.fault[0] = true
	// A token generation is mid-gather on the surviving network only.
	a.OnPacket(0, 1, tokenBytes(t, 30, 0))
	if len(rec.delivered) != 1 {
		t.Fatal("setup: token should pass with only one usable network")
	}
	// New generation arrives on net 1, then the repaired net 0 is
	// readmitted mid-gather: the gate must not stall on net 0.
	a.OnPacket(0, 1, tokenBytes(t, 40, 0))
	a.Readmit(0)
	if len(rec.delivered) != 2 {
		t.Fatal("readmit stalled the in-flight token gate")
	}
	if f := a.Faulty(); f[0] {
		t.Fatal("fault flag not cleared")
	}
}

func TestReadmitNoopWhenNotFaulty(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	a.Readmit(0) // not faulty: no-op
	a.Readmit(9) // out of range: no-op
	if f := a.Faulty(); f[0] || f[1] {
		t.Fatalf("faulty = %v", f)
	}
}
