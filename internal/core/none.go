package core

import "github.com/totem-rrp/totem/internal/proto"

// none is the unreplicated baseline: the SRP runs directly on network 0.
// It exists so the evaluation can compare replication styles against the
// paper's "no replication" configuration.
type none struct {
	base
}

func newNone(cfg Config, acts *proto.Actions, cb Callbacks) *none {
	return &none{base: newBase(cfg, acts, cb)}
}

// Style implements Replicator.
func (n *none) Style() proto.ReplicationStyle { return proto.ReplicationNone }

// Start implements Replicator.
func (n *none) Start(now proto.Time) {}

// SendMessage implements Replicator.
func (n *none) SendMessage(data []byte) {
	n.send(0, proto.BroadcastID, data)
}

// SendToken implements Replicator.
func (n *none) SendToken(dest proto.NodeID, data []byte) {
	n.send(0, dest, data)
}

// OnPacket implements Replicator.
func (n *none) OnPacket(now proto.Time, network int, data []byte) {
	if network < len(n.met.rx) {
		n.met.rx[network].Inc()
	}
	n.cb.Deliver(now, data)
}

// OnTimer implements Replicator.
func (n *none) OnTimer(now proto.Time, id proto.TimerID) {}

// Readmit implements Replicator (no-op: the baseline never faults its
// only network).
func (n *none) Readmit(network int) {}

var _ Replicator = (*none)(nil)
