package core

import (
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
)

// drainClears extracts FaultCleared reports (dropping all other actions,
// like the sibling drain helpers).
func (r *recorder) drainClears() []proto.ClearReport {
	var out []proto.ClearReport
	for _, a := range r.acts.Drain() {
		if c, ok := a.(proto.FaultCleared); ok {
			out = append(out, c.Report)
		}
	}
	return out
}

// decay fires one RRP decay timer, advancing the recovery monitor by one
// window.
func decay(a *active) {
	a.OnTimer(0, proto.TimerID{Class: proto.TimerRRPDecay})
}

// cleanWindow simulates one decay window in which network net received
// traffic: a few receptions, then the window boundary.
func cleanWindow(t *testing.T, a *active, net int, seq *uint32) {
	t.Helper()
	for i := 0; i < 3; i++ {
		*seq++
		a.OnPacket(0, net, dataBytes(t, 2, *seq))
	}
	decay(a)
}

// convict marks network net faulty through the regular conviction path.
func convict(t *testing.T, a *active, net int) {
	t.Helper()
	a.markFaulty(0, net, "test conviction")
	if !a.fault[net] {
		t.Fatalf("network %d not convicted", net)
	}
}

func TestAutoReadmitAfterCleanProbation(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	convict(t, a, 1)
	rec.acts.Drain()

	var seq uint32
	for w := 0; w < a.cfg.ProbationWindows-1; w++ {
		cleanWindow(t, a, 1, &seq)
		if !a.fault[1] {
			t.Fatalf("readmitted after only %d clean windows", w+1)
		}
	}
	cleanWindow(t, a, 1, &seq)
	if a.fault[1] {
		t.Fatal("network not readmitted after serving its probation")
	}
	clears := rec.drainClears()
	if len(clears) != 1 || clears[0].Network != 1 || clears[0].Probation != a.cfg.ProbationWindows {
		t.Fatalf("clears = %v, want one for network 1 after %d windows", clears, a.cfg.ProbationWindows)
	}
	s := a.Stats()
	if s.FaultsCleared != 1 || s.Readmits != 1 || s.FlapBackoffs != 0 {
		t.Fatalf("stats = cleared %d readmits %d flaps %d", s.FaultsCleared, s.Readmits, s.FlapBackoffs)
	}
}

func TestSilentWindowRestartsProbation(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	convict(t, a, 1)

	var seq uint32
	// Two clean windows, then silence: the consecutive-run requirement
	// starts over.
	cleanWindow(t, a, 1, &seq)
	cleanWindow(t, a, 1, &seq)
	decay(a)
	cleanWindow(t, a, 1, &seq)
	cleanWindow(t, a, 1, &seq)
	if !a.fault[1] {
		t.Fatal("readmitted without consecutive clean windows")
	}
	cleanWindow(t, a, 1, &seq)
	if a.fault[1] {
		t.Fatal("not readmitted after a full consecutive run")
	}
}

// passGrace advances past the post-readmission grace (scaled to the
// probation just served) so the next conviction is not discarded as
// readmission skew.
func passGrace(a *active) {
	for a.inReadmitGrace(1) {
		decay(a)
	}
}

func TestFlapDoublesProbation(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	var seq uint32

	serve := func(want int) {
		t.Helper()
		for w := 0; w < want-1; w++ {
			cleanWindow(t, a, 1, &seq)
			if !a.fault[1] {
				t.Fatalf("readmitted after %d of %d required windows", w+1, want)
			}
		}
		cleanWindow(t, a, 1, &seq)
		if a.fault[1] {
			t.Fatalf("not readmitted after %d clean windows", want)
		}
		clears := rec.drainClears()
		if len(clears) != 1 || clears[0].Probation != want {
			t.Fatalf("clears = %v, want probation %d", clears, want)
		}
	}

	convict(t, a, 1)
	serve(a.cfg.ProbationWindows) // 3
	passGrace(a)
	convict(t, a, 1)                  // re-fault within the flap window
	serve(2 * a.cfg.ProbationWindows) // 6
	passGrace(a)
	convict(t, a, 1)
	serve(4 * a.cfg.ProbationWindows) // 12
	if got := a.Stats().FlapBackoffs; got != 2 {
		t.Fatalf("FlapBackoffs = %d, want 2", got)
	}
}

func TestFlapProbationCapsAtMaxProbation(t *testing.T) {
	rec := &recorder{}
	cfg := DefaultConfig(2, proto.ReplicationActive)
	cfg.ProbationWindows = 2
	cfg.MaxProbation = 5
	rep, err := New(cfg, &rec.acts, rec.callbacks())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a := rep.(*active)
	var seq uint32

	serve := func() int {
		t.Helper()
		for w := 0; w < cfg.MaxProbation+1; w++ {
			cleanWindow(t, a, 1, &seq)
			if !a.fault[1] {
				clears := rec.drainClears()
				if len(clears) != 1 {
					t.Fatalf("clears = %v", clears)
				}
				return clears[0].Probation
			}
		}
		t.Fatal("network never readmitted")
		return 0
	}

	convict(t, a, 1)
	want := []int{2, 4, 5, 5} // doubling clamps at MaxProbation and stays
	for i, w := range want {
		if got := serve(); got != w {
			t.Fatalf("flap %d: probation %d, want %d", i, got, w)
		}
		passGrace(a)
		convict(t, a, 1)
	}
}

func TestCalmRefaultResetsProbation(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	var seq uint32

	serve := func() int {
		t.Helper()
		for a.fault[1] {
			cleanWindow(t, a, 1, &seq)
		}
		clears := rec.drainClears()
		if len(clears) != 1 {
			t.Fatalf("clears = %v", clears)
		}
		return clears[0].Probation
	}

	convict(t, a, 1)
	serve()
	passGrace(a)
	convict(t, a, 1) // flap: probation doubles
	if got := serve(); got != 2*a.cfg.ProbationWindows {
		t.Fatalf("flap probation = %d", got)
	}
	// A long healthy stretch (beyond FlapWindow) before the next fault:
	// the backoff is forgiven and probation returns to the baseline.
	flapW := int(a.cfg.FlapWindow/a.cfg.DecayInterval) + 1
	for w := 0; w < flapW; w++ {
		decay(a)
	}
	convict(t, a, 1)
	if got := serve(); got != a.cfg.ProbationWindows {
		t.Fatalf("post-calm probation = %d, want baseline %d", got, a.cfg.ProbationWindows)
	}
}

func TestProbationProbesAreBoundedPerWindow(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	convict(t, a, 1)
	rec.acts.Drain()

	var seq uint32
	send := func() {
		seq++
		a.SendMessage(dataBytes(t, 1, seq))
	}
	for i := 0; i < recoveryProbesPerWindow+3; i++ {
		send()
	}
	counts := rec.drainSends(t, 2)
	if counts[0] != recoveryProbesPerWindow+3 {
		t.Fatalf("healthy network got %d sends", counts[0])
	}
	if counts[1] != recoveryProbesPerWindow {
		t.Fatalf("faulty network got %d probes, want budget %d", counts[1], recoveryProbesPerWindow)
	}
	// The next window refills the budget.
	decay(a)
	rec.acts.Drain()
	for i := 0; i < recoveryProbesPerWindow+3; i++ {
		send()
	}
	if counts := rec.drainSends(t, 2); counts[1] != recoveryProbesPerWindow {
		t.Fatalf("faulty network got %d probes after refill, want %d", counts[1], recoveryProbesPerWindow)
	}
}

func TestAutoReadmitDisabledPreservesManualModel(t *testing.T) {
	rec := &recorder{}
	cfg := DefaultConfig(2, proto.ReplicationActive)
	cfg.AutoReadmit = false
	rep, err := New(cfg, &rec.acts, rec.callbacks())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a := rep.(*active)
	convict(t, a, 1)
	rec.acts.Drain()

	// No probes: a faulty network gets zero sends (paper §3).
	var seq uint32
	for i := 0; i < 10; i++ {
		seq++
		a.SendMessage(dataBytes(t, 1, seq))
	}
	if counts := rec.drainSends(t, 2); counts[1] != 0 {
		t.Fatalf("faulty network got %d sends with AutoReadmit off", counts[1])
	}
	// No readmission, however clean the network looks.
	for w := 0; w < 5*cfg.ProbationWindows; w++ {
		cleanWindow(t, a, 1, &seq)
	}
	if !a.fault[1] {
		t.Fatal("network auto-readmitted with AutoReadmit off")
	}
	if clears := rec.drainClears(); len(clears) != 0 {
		t.Fatalf("clears = %v, want none", clears)
	}
	if s := a.Stats(); s.FaultsCleared != 0 || s.Readmits != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// The operator's manual readmission still works and is counted.
	a.Readmit(1)
	if a.fault[1] {
		t.Fatal("manual readmit failed")
	}
	if s := a.Stats(); s.Readmits != 1 || s.FaultsCleared != 0 {
		t.Fatalf("stats after manual readmit = %+v", s)
	}
}

func TestReadmitGraceDiscardsSkewEvidence(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	convict(t, a, 1)
	var seq uint32
	for a.fault[1] {
		cleanWindow(t, a, 1, &seq)
	}
	rec.acts.Drain()
	// Right after readmission, peers may still exclude the network for a
	// window or two; a conviction in that grace is discarded...
	a.markFaulty(0, 1, "skew evidence")
	if a.fault[1] {
		t.Fatal("convicted during readmission grace")
	}
	if faults := rec.drainFaults(); len(faults) != 0 {
		t.Fatalf("grace raised alarms: %v", faults)
	}
	// ...but once the grace expires, convictions work again.
	passGrace(a)
	a.markFaulty(0, 1, "real fault")
	if !a.fault[1] {
		t.Fatal("conviction suppressed after grace expired")
	}
}

func TestValidateAutoReadmitParams(t *testing.T) {
	base := DefaultConfig(2, proto.ReplicationActive)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"zero probation", func(c *Config) { c.ProbationWindows = 0 }},
		{"negative probation", func(c *Config) { c.ProbationWindows = -1 }},
		{"max below probation", func(c *Config) { c.MaxProbation = c.ProbationWindows - 1 }},
		{"zero flap window", func(c *Config) { c.FlapWindow = 0 }},
	} {
		cfg := base
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
	// The knobs are ignored (and not validated) when auto-readmit is off.
	cfg := base
	cfg.AutoReadmit = false
	cfg.ProbationWindows = 0
	cfg.FlapWindow = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate rejected disabled auto-readmit config: %v", err)
	}
}
