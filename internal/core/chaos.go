package core

// Chaos deliberately reintroduces fixed bugs, so the torture harness
// (internal/torture) can prove that its invariant checkers actually catch
// the bug classes they were built for — mutation testing for the checker
// itself. Every flag reverts one specific, already-fixed defect; with all
// flags false (the zero value) the replicators behave correctly.
//
// The flags are package-level and unsynchronised on purpose: they are
// consulted on hot paths, and the only supported use is single-threaded
// test orchestration — set before building any replicator, reset when the
// run ends. Production drivers must leave Chaos zeroed.
var Chaos ChaosFlags

// ChaosFlags selects which fixed bugs to reintroduce.
type ChaosFlags struct {
	// HeldTokenLeak reverts the displaced-held-token fix in passive
	// replication: a second token arriving while one is buffered silently
	// replaces it, stranding the displaced frame (no recycle) and leaving
	// the probe/metric stream claiming the old token was never resolved.
	// The torture harness catches this via its token-accounting invariant.
	HeldTokenLeak bool
	// MonitorPinnedMin reverts the countMonitor normalisation fix: the
	// minimum is taken over all networks including faulty ones, so during
	// a long-lived fault the frozen faulty counter pins the minimum and
	// the healthy counters grow without bound. The torture harness catches
	// this via its monitor-boundedness invariant (requirement P5).
	MonitorPinnedMin bool
	// FrozenTokenFilter disables the self-stabilization path that makes
	// arbitrary-state corruption recoverable: the SRP's duplicate-token
	// filter is no longer reset when a new ring is installed, so a filter
	// poisoned with a future sequence number keeps discarding every
	// genuine token forever and the ring re-forms endlessly. The torture
	// harness catches this via its bounded-recovery invariant (DESIGN.md
	// §12). Consulted by internal/srp, not by the replicators.
	FrozenTokenFilter bool
	// ImpatientGate removes the active gate's slowness tolerance: the
	// token gate timer fires immediately instead of after TokenTimeout,
	// so any network whose token copy is not strictly first gets a
	// problem-counter charge every rotation and a merely-slow network is
	// convicted as dead. The torture harness catches this via its
	// slow-vs-dead discrimination invariant.
	ImpatientGate bool
}
