package core

import "github.com/totem-rrp/totem/internal/proto"

// This file implements the automatic-readmission subsystem: a per-network
// recovery monitor that turns the paper's operator-driven readmission (§3)
// into a self-healing loop.
//
// The observation channel is the paper's own invariant: a node never
// *sends* on a network it has declared faulty, but it keeps *receiving*
// from it. Whatever still arrives on a faulty network is therefore free
// evidence about its health. The monitor counts receptions per decay
// window; a window with at least one reception is "clean", and after
// ProbationWindows consecutive clean windows the network is readmitted,
// its monitors reset, and a FaultCleared report emitted.
//
// One amendment to pure passivity is required: once every node has
// convicted a network, nobody sends on it, so a fully healed network would
// stay silent — and faulty — forever. While a network is on probation,
// each node therefore duplicates a small, bounded number of its outgoing
// packets per window onto the faulty network ("probation probes").
// Duplicates are already harmless by construction: the SRP drops duplicate
// data packets via its sequence filter (requirement A1) and duplicate
// tokens via its (seq, rotation) token-key filter, and the active /
// active-passive token gates only count copies on non-faulty networks.
//
// Flap damping guards against oscillating links: a network that re-faults
// within FlapWindow of its last readmission has its next probation
// doubled, up to MaxProbation, so a link that dies and heals on a cycle
// converges to mostly-disabled instead of thrashing the token gating.
//
// All bookkeeping is in whole decay windows (integer window counters, no
// clock reads), which keeps the state machine deterministic and makes
// FlapWindow robust to any DecayInterval setting.

// recoveryProbesPerWindow bounds the duplicate sends per faulty network
// per decay window. Broadcast probes reach every peer, so a handful per
// window is ample evidence while keeping the overhead negligible.
const recoveryProbesPerWindow = 4

// recoveryState is the per-replicator bookkeeping of the recovery monitor.
type recoveryState struct {
	// windows counts decay ticks since start (monotonic virtual clock).
	windows uint64
	// lastRx snapshots stats.RxPackets at the last window boundary.
	lastRx []uint64
	// cleanWindows counts consecutive windows with receptions per network.
	cleanWindows []int
	// probation is the currently required clean-window run per network;
	// starts at ProbationWindows and doubles under flap damping.
	probation []int
	// lastClearWindow records the window of the last readmission.
	lastClearWindow []uint64
	// everCleared marks networks that have been readmitted at least once
	// (the zero value of lastClearWindow would otherwise look recent).
	everCleared []bool
	// graceUntil suppresses monitor convictions of a freshly readmitted
	// network until this window: peers readmit at slightly different
	// window phases, and until the slowest one does, the network
	// legitimately misses that peer's traffic.
	graceUntil []uint64
	// probeBudget is the number of probe duplicates left this window.
	probeBudget []int
}

func newRecoveryState(cfg Config) recoveryState {
	n := cfg.Networks
	r := recoveryState{
		lastRx:          make([]uint64, n),
		cleanWindows:    make([]int, n),
		probation:       make([]int, n),
		lastClearWindow: make([]uint64, n),
		everCleared:     make([]bool, n),
		graceUntil:      make([]uint64, n),
		probeBudget:     make([]int, n),
	}
	for i := range r.probation {
		r.probation[i] = cfg.ProbationWindows
	}
	return r
}

// flapWindows converts FlapWindow into whole decay windows (at least one).
func (b *base) flapWindows() uint64 {
	w := uint64(b.cfg.FlapWindow / b.cfg.DecayInterval)
	if w == 0 {
		w = 1
	}
	return w
}

// noteFault is called by markFaulty once network i is actually disabled.
// It opens the probation, applying exponential backoff when the fault is a
// flap (a re-fault shortly after the previous readmission).
func (b *base) noteFault(i int) {
	if !b.cfg.AutoReadmit {
		return
	}
	r := &b.rec
	if r.everCleared[i] && r.windows-r.lastClearWindow[i] <= b.flapWindows() {
		b.met.flapBackoffs.Inc()
		if r.probation[i] < b.cfg.MaxProbation {
			r.probation[i] *= 2
			if r.probation[i] > b.cfg.MaxProbation {
				r.probation[i] = b.cfg.MaxProbation
			}
		}
		b.acts.Probe(proto.ProbeFlapBackoff, i, int64(r.probation[i]), 0, 0)
	} else {
		r.probation[i] = b.cfg.ProbationWindows
	}
	r.cleanWindows[i] = 0
	r.lastRx[i] = b.met.rx[i].Count()
	r.probeBudget[i] = recoveryProbesPerWindow
}

// noteReadmitted resets the recovery bookkeeping when network i is
// readmitted, whether by the monitor or by an operator. The probation
// length is deliberately kept: only a clean (non-flap) re-fault resets it.
func (b *base) noteReadmitted(i int) {
	r := &b.rec
	r.lastClearWindow[i] = r.windows
	r.everCleared[i] = true
	r.cleanWindows[i] = 0
	r.probeBudget[i] = 0
	// Peer readmissions are skewed: each node's clean-window evidence
	// depends on what its peers send, and a peer that still excludes the
	// network from its send rotation holds the next node's readmission
	// back. Until the slowest peer readmits, the network legitimately
	// lags at everyone who already did, so the grace must outlast that
	// skew or the fast readmitters re-convict and the fault rolls around
	// the ring forever. Scaling the grace to the probation just served
	// makes the loop self-stabilising: a flap doubles the probation,
	// which doubles the next grace, until the grace covers the skew.
	grace := uint64(r.probation[i])
	if grace < 2 {
		grace = 2
	}
	r.graceUntil[i] = r.windows + grace
}

// inReadmitGrace reports whether network i was readmitted so recently
// that monitor evidence against it should be discarded.
func (b *base) inReadmitGrace(i int) bool {
	return b.cfg.AutoReadmit && b.rec.windows < b.rec.graceUntil[i]
}

// readmitCommon performs the style-independent half of a readmission:
// clear the flag, count it, update recovery state. Style Readmit methods
// call it after their own validation and before resetting their monitors.
func (b *base) readmitCommon(network int) {
	b.fault[network] = false
	b.met.readmits.Inc()
	b.noteReadmitted(network)
}

// probeSend duplicates one outgoing packet onto every faulty network that
// still has probe budget this window, so peers (and through their probes,
// this node) can observe whether the network has healed.
func (b *base) probeSend(dest proto.NodeID, data []byte) {
	if !b.cfg.AutoReadmit {
		return
	}
	for i := range b.fault {
		if b.fault[i] && b.rec.probeBudget[i] > 0 {
			b.rec.probeBudget[i]--
			b.met.probesSent.Inc()
			b.acts.Probe(proto.ProbeProbeSent, i, int64(b.rec.probeBudget[i]), 0, 0)
			b.send(i, dest, data)
		}
	}
}

// recoveryTick advances the monitor by one decay window. For every faulty
// network it classifies the elapsed window as clean (receptions arrived)
// or silent, and readmits the network once its probation is served via
// readmit (the calling style's Readmit method, which resets that style's
// health monitors). It must be called from every style's decay handler.
func (b *base) recoveryTick(now proto.Time, readmit func(network int)) {
	r := &b.rec
	r.windows++
	if !b.cfg.AutoReadmit {
		return
	}
	for i := 0; i < b.cfg.Networks; i++ {
		if !b.fault[i] {
			// Keep the snapshot fresh so a fault opening mid-window only
			// counts receptions from roughly the fault onward.
			r.lastRx[i] = b.met.rx[i].Count()
			continue
		}
		delta := b.met.rx[i].Count() - r.lastRx[i]
		r.lastRx[i] = b.met.rx[i].Count()
		if delta == 0 {
			r.cleanWindows[i] = 0
		} else {
			r.cleanWindows[i]++
		}
		b.acts.Probe(proto.ProbeProbation, i, int64(r.cleanWindows[i]), int64(r.probation[i]), 0)
		if r.cleanWindows[i] >= r.probation[i] {
			served := r.probation[i]
			readmit(i)
			b.met.faultsCleared.Inc()
			b.acts.FaultCleared(proto.ClearReport{Network: i, Probation: served, Time: now})
			continue
		}
		r.probeBudget[i] = recoveryProbesPerWindow
	}
}
