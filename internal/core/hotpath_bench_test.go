package core

import (
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// BenchmarkHotPathEncodeFanout is the tentpole measurement: one
// steady-state data packet encoded into a pooled frame and fanned out by
// the active replicator to both networks, with the action batch drained
// and recycled the way a driver does. Must report 0 allocs/op.
func BenchmarkHotPathEncodeFanout(b *testing.B) {
	var acts proto.Actions
	rep, err := New(DefaultConfig(2, proto.ReplicationActive), &acts, Callbacks{
		Deliver: func(proto.Time, []byte) {},
		Missing: func(uint32) bool { return false },
	})
	if err != nil {
		b.Fatal(err)
	}
	pkt := &wire.DataPacket{
		Ring:   proto.RingID{Rep: 1, Epoch: 3},
		Sender: 1,
		Chunks: []wire.Chunk{{Flags: wire.ChunkFirst | wire.ChunkLast, Data: make([]byte, 1400)}},
	}
	b.SetBytes(1400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.Seq++
		frame, err := pkt.AppendEncode(wire.GetFrame())
		if err != nil {
			b.Fatal(err)
		}
		rep.SendMessage(frame)
		batch := acts.Drain()
		sends := 0
		for _, a := range batch {
			if _, ok := a.(*proto.SendPacket); ok {
				sends++
			}
		}
		if sends != 2 {
			b.Fatalf("want fan-out to 2 networks, got %d sends", sends)
		}
		acts.Recycle(batch)
		wire.PutFrame(frame)
	}
}

// BenchmarkHotPathFanoutOnly isolates the replicator + action-buffer cost
// from the codec.
func BenchmarkHotPathFanoutOnly(b *testing.B) {
	var acts proto.Actions
	rep, err := New(DefaultConfig(2, proto.ReplicationActive), &acts, Callbacks{
		Deliver: func(proto.Time, []byte) {},
		Missing: func(uint32) bool { return false },
	})
	if err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, 1412)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.SendMessage(frame)
		acts.Recycle(acts.Drain())
	}
}
