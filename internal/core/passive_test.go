package core

import (
	"strings"
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
)

func newPassiveForTest(t *testing.T, rec *recorder, networks int) *passive {
	t.Helper()
	cfg := DefaultConfig(networks, proto.ReplicationPassive)
	rep, err := New(cfg, &rec.acts, rec.callbacks())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p, ok := rep.(*passive)
	if !ok {
		t.Fatalf("want *passive, got %T", rep)
	}
	return p
}

func TestPassiveRoundRobinSend(t *testing.T) {
	rec := &recorder{}
	p := newPassiveForTest(t, rec, 3)
	for i := 0; i < 6; i++ {
		p.SendMessage(dataBytes(t, 1, uint32(i+1)))
	}
	if got := rec.drainSends(t, 3); got[0] != 2 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("sends = %v, want perfectly balanced round-robin", got)
	}
}

func TestPassiveSendsSingleCopy(t *testing.T) {
	// Paper §4: bandwidth consumption equals the unreplicated system.
	rec := &recorder{}
	p := newPassiveForTest(t, rec, 2)
	p.SendMessage(dataBytes(t, 1, 1))
	counts := rec.drainSends(t, 2)
	if counts[0]+counts[1] != 1 {
		t.Fatalf("sends = %v, want exactly one copy", counts)
	}
}

func TestPassiveTokenRoundRobinIndependentOfMessages(t *testing.T) {
	rec := &recorder{}
	p := newPassiveForTest(t, rec, 2)
	p.SendMessage(dataBytes(t, 1, 1)) // message uses network 0
	rec.acts.Drain()
	p.SendToken(2, tokenBytes(t, 1, 0)) // token pointer starts fresh
	for _, a := range rec.acts.Drain() {
		if sp, ok := a.(*proto.SendPacket); ok {
			if sp.Network != 0 {
				t.Fatalf("token went via network %d, want independent rotation starting at 0", sp.Network)
			}
			if sp.Dest != 2 {
				t.Fatalf("token dest %v", sp.Dest)
			}
		}
	}
}

func TestPassiveSkipsFaultyNetwork(t *testing.T) {
	rec := &recorder{}
	p := newPassiveForTest(t, rec, 3)
	p.fault[1] = true
	for i := 0; i < 4; i++ {
		p.SendMessage(dataBytes(t, 1, uint32(i+1)))
	}
	if got := rec.drainSends(t, 3); got[1] != 0 || got[0] != 2 || got[2] != 2 {
		t.Fatalf("sends = %v, want network 1 skipped", got)
	}
}

func TestPassiveTokenPassesWhenNothingMissing(t *testing.T) {
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 2)
	p.OnPacket(0, 0, tokenBytes(t, 10, 0))
	if len(rec.delivered) != 1 {
		t.Fatalf("token not passed straight up: %d", len(rec.delivered))
	}
	if p.Stats().TokensGated != 1 {
		t.Fatalf("TokensGated = %d", p.Stats().TokensGated)
	}
}

func TestPassiveBuffersTokenWhileMissing(t *testing.T) {
	// Requirement P1 / Figure 3 scenario 1: a token overtaking a delayed
	// message must not trigger a retransmission — it is buffered.
	rec := &recorder{missing: true}
	p := newPassiveForTest(t, rec, 2)
	p.OnPacket(0, 0, tokenBytes(t, 10, 0))
	if len(rec.delivered) != 0 {
		t.Fatal("token passed up despite missing messages")
	}
	if !p.holding {
		t.Fatal("token not held")
	}
	// The delayed message arrives on the other network; the gap closes.
	rec.missing = false
	p.OnPacket(0, 1, dataBytes(t, 3, 10))
	if len(rec.delivered) != 2 {
		t.Fatalf("deliveries = %d, want message then token", len(rec.delivered))
	}
	// Order: message first, then the released token (paper Fig. 4).
	if k, _ := peekKindForTest(rec.delivered[0]); k != 1 {
		t.Fatal("message was not delivered before the released token")
	}
}

func TestPassiveTokenTimerReleasesHeldToken(t *testing.T) {
	// Requirement P3: progress even if the missing message never arrives.
	rec := &recorder{missing: true}
	p := newPassiveForTest(t, rec, 2)
	p.OnPacket(0, 0, tokenBytes(t, 10, 0))
	p.OnTimer(p.cfg.TokenHold, proto.TimerID{Class: proto.TimerRRPToken})
	if len(rec.delivered) != 1 {
		t.Fatalf("timer did not release token: %d", len(rec.delivered))
	}
	if p.Stats().TokensTimedOut != 1 {
		t.Fatalf("TokensTimedOut = %d", p.Stats().TokensTimedOut)
	}
}

func TestPassiveMessageWithStillMissingKeepsHolding(t *testing.T) {
	// Figure 3 scenario 2: message m3 arrives while m2 is still missing —
	// the held token stays held.
	rec := &recorder{missing: true}
	p := newPassiveForTest(t, rec, 2)
	p.OnPacket(0, 0, tokenBytes(t, 10, 0))
	p.OnPacket(0, 1, dataBytes(t, 3, 9)) // a message, but gaps remain
	if len(rec.delivered) != 1 {         // only the message went up
		t.Fatalf("deliveries = %d, want 1", len(rec.delivered))
	}
	if !p.holding {
		t.Fatal("token released despite missing messages")
	}
}

func TestPassiveMonitorFlagsLaggingNetwork(t *testing.T) {
	// Requirement P4: the network that stops delivering is detected.
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 2)
	var seq uint32
	for i := 0; i <= p.cfg.DiffThreshold; i++ {
		seq++
		p.OnPacket(0, 0, dataBytes(t, 3, seq)) // network 1 delivers nothing
	}
	faults := rec.drainFaults()
	if len(faults) != 1 || faults[0].Network != 1 {
		t.Fatalf("faults = %v, want network 1", faults)
	}
	if !strings.Contains(faults[0].Reason, "message monitor") {
		t.Fatalf("reason = %q", faults[0].Reason)
	}
}

func TestPassiveTokenMonitorFlagsLaggingNetwork(t *testing.T) {
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 2)
	var seq uint32
	for i := 0; i <= p.cfg.DiffThreshold; i++ {
		seq += 5
		p.OnPacket(0, 0, tokenBytes(t, seq, 0))
	}
	faults := rec.drainFaults()
	if len(faults) != 1 || faults[0].Network != 1 {
		t.Fatalf("faults = %v, want network 1 via token monitor", faults)
	}
}

func TestPassiveMonitorPerSenderIsolation(t *testing.T) {
	// One sender's traffic imbalance must not be masked by another's.
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 2)
	var seq uint32
	for i := 0; i < p.cfg.DiffThreshold/2; i++ {
		seq++
		p.OnPacket(0, 0, dataBytes(t, 3, seq))
		seq++
		p.OnPacket(0, 1, dataBytes(t, 4, seq))
	}
	if faults := rec.drainFaults(); len(faults) != 0 {
		t.Fatalf("balanced per-sender traffic raised faults: %v", faults)
	}
}

func TestPassiveReplenishForgivesSporadicLoss(t *testing.T) {
	// Requirement P5: occasional loss on one network, spread over time,
	// never accumulates into a fault when decay runs in between.
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 2)
	var seq uint32
	for round := 0; round < 4*p.cfg.DiffThreshold; round++ {
		// Alternating traffic with one extra reception on network 0 per
		// round (a sporadic loss on network 1)...
		seq++
		p.OnPacket(0, 0, dataBytes(t, 3, seq))
		seq++
		p.OnPacket(0, 1, dataBytes(t, 3, seq))
		seq++
		p.OnPacket(0, 0, dataBytes(t, 3, seq))
		// ...followed by a replenish tick.
		p.OnTimer(0, proto.TimerID{Class: proto.TimerRRPDecay})
	}
	if faults := rec.drainFaults(); len(faults) != 0 {
		t.Fatalf("sporadic loss raised faults: %v", faults)
	}
}

func TestPassiveNewerTokenReplacesHeldToken(t *testing.T) {
	rec := &recorder{missing: true}
	p := newPassiveForTest(t, rec, 2)
	p.OnPacket(0, 0, tokenBytes(t, 10, 0))
	p.OnPacket(0, 1, tokenBytes(t, 20, 0))
	rec.missing = false
	p.OnTimer(0, proto.TimerID{Class: proto.TimerRRPToken})
	if len(rec.delivered) != 1 {
		t.Fatalf("deliveries = %d", len(rec.delivered))
	}
	seq, _, err := peekTokenSeqForTest(rec.delivered[0])
	if err != nil || seq != 20 {
		t.Fatalf("released token seq = %d, want the newest (20)", seq)
	}
}

func TestPassiveFaultStopsCountingTowardLag(t *testing.T) {
	// After a network is declared faulty its frozen counter must not keep
	// raising faults.
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 3)
	var seq uint32
	for i := 0; i <= 3*p.cfg.DiffThreshold; i++ {
		seq++
		p.OnPacket(0, i%2, dataBytes(t, 3, seq)) // networks 0,1 only
	}
	faults := rec.drainFaults()
	if len(faults) != 1 || faults[0].Network != 2 {
		t.Fatalf("faults = %v, want exactly one fault on network 2", faults)
	}
}

// peekKindForTest re-exports wire.PeekKind without an import cycle risk in
// these white-box tests.
func peekKindForTest(data []byte) (byte, error) {
	if len(data) < 4 {
		return 0, nil
	}
	return data[3], nil
}

func peekTokenSeqForTest(data []byte) (uint32, uint32, error) {
	if len(data) < 20 {
		return 0, 0, nil
	}
	return uint32(data[12])<<24 | uint32(data[13])<<16 | uint32(data[14])<<8 | uint32(data[15]),
		0, nil
}
