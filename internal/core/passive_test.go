package core

import (
	"strings"
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
)

func newPassiveForTest(t *testing.T, rec *recorder, networks int) *passive {
	t.Helper()
	cfg := DefaultConfig(networks, proto.ReplicationPassive)
	rep, err := New(cfg, &rec.acts, rec.callbacks())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p, ok := rep.(*passive)
	if !ok {
		t.Fatalf("want *passive, got %T", rep)
	}
	return p
}

func TestPassiveRoundRobinSend(t *testing.T) {
	rec := &recorder{}
	p := newPassiveForTest(t, rec, 3)
	for i := 0; i < 6; i++ {
		p.SendMessage(dataBytes(t, 1, uint32(i+1)))
	}
	if got := rec.drainSends(t, 3); got[0] != 2 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("sends = %v, want perfectly balanced round-robin", got)
	}
}

func TestPassiveSendsSingleCopy(t *testing.T) {
	// Paper §4: bandwidth consumption equals the unreplicated system.
	rec := &recorder{}
	p := newPassiveForTest(t, rec, 2)
	p.SendMessage(dataBytes(t, 1, 1))
	counts := rec.drainSends(t, 2)
	if counts[0]+counts[1] != 1 {
		t.Fatalf("sends = %v, want exactly one copy", counts)
	}
}

func TestPassiveTokenRoundRobinIndependentOfMessages(t *testing.T) {
	rec := &recorder{}
	p := newPassiveForTest(t, rec, 2)
	p.SendMessage(dataBytes(t, 1, 1)) // message uses network 0
	rec.acts.Drain()
	p.SendToken(2, tokenBytes(t, 1, 0)) // token pointer starts fresh
	for _, a := range rec.acts.Drain() {
		if sp, ok := a.(*proto.SendPacket); ok {
			if sp.Network != 0 {
				t.Fatalf("token went via network %d, want independent rotation starting at 0", sp.Network)
			}
			if sp.Dest != 2 {
				t.Fatalf("token dest %v", sp.Dest)
			}
		}
	}
}

func TestPassiveSkipsFaultyNetwork(t *testing.T) {
	rec := &recorder{}
	p := newPassiveForTest(t, rec, 3)
	p.fault[1] = true
	for i := 0; i < 4; i++ {
		p.SendMessage(dataBytes(t, 1, uint32(i+1)))
	}
	if got := rec.drainSends(t, 3); got[1] != 0 || got[0] != 2 || got[2] != 2 {
		t.Fatalf("sends = %v, want network 1 skipped", got)
	}
}

func TestPassiveTokenPassesWhenNothingMissing(t *testing.T) {
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 2)
	p.OnPacket(0, 0, tokenBytes(t, 10, 0))
	if len(rec.delivered) != 1 {
		t.Fatalf("token not passed straight up: %d", len(rec.delivered))
	}
	if p.Stats().TokensGated != 1 {
		t.Fatalf("TokensGated = %d", p.Stats().TokensGated)
	}
}

func TestPassiveBuffersTokenWhileMissing(t *testing.T) {
	// Requirement P1 / Figure 3 scenario 1: a token overtaking a delayed
	// message must not trigger a retransmission — it is buffered.
	rec := &recorder{missing: true}
	p := newPassiveForTest(t, rec, 2)
	p.OnPacket(0, 0, tokenBytes(t, 10, 0))
	if len(rec.delivered) != 0 {
		t.Fatal("token passed up despite missing messages")
	}
	if !p.holding {
		t.Fatal("token not held")
	}
	// The delayed message arrives on the other network; the gap closes.
	rec.missing = false
	p.OnPacket(0, 1, dataBytes(t, 3, 10))
	if len(rec.delivered) != 2 {
		t.Fatalf("deliveries = %d, want message then token", len(rec.delivered))
	}
	// Order: message first, then the released token (paper Fig. 4).
	if k, _ := peekKindForTest(rec.delivered[0]); k != 1 {
		t.Fatal("message was not delivered before the released token")
	}
}

func TestPassiveTokenTimerReleasesHeldToken(t *testing.T) {
	// Requirement P3: progress even if the missing message never arrives.
	rec := &recorder{missing: true}
	p := newPassiveForTest(t, rec, 2)
	p.OnPacket(0, 0, tokenBytes(t, 10, 0))
	p.OnTimer(p.cfg.TokenHold, proto.TimerID{Class: proto.TimerRRPToken})
	if len(rec.delivered) != 1 {
		t.Fatalf("timer did not release token: %d", len(rec.delivered))
	}
	if p.Stats().TokensTimedOut != 1 {
		t.Fatalf("TokensTimedOut = %d", p.Stats().TokensTimedOut)
	}
}

func TestPassiveMessageWithStillMissingKeepsHolding(t *testing.T) {
	// Figure 3 scenario 2: message m3 arrives while m2 is still missing —
	// the held token stays held.
	rec := &recorder{missing: true}
	p := newPassiveForTest(t, rec, 2)
	p.OnPacket(0, 0, tokenBytes(t, 10, 0))
	p.OnPacket(0, 1, dataBytes(t, 3, 9)) // a message, but gaps remain
	if len(rec.delivered) != 1 {         // only the message went up
		t.Fatalf("deliveries = %d, want 1", len(rec.delivered))
	}
	if !p.holding {
		t.Fatal("token released despite missing messages")
	}
}

func TestPassiveMonitorFlagsLaggingNetwork(t *testing.T) {
	// Requirement P4: the network that stops delivering is detected.
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 2)
	var seq uint32
	for i := 0; i <= p.cfg.DiffThreshold; i++ {
		seq++
		p.OnPacket(0, 0, dataBytes(t, 3, seq)) // network 1 delivers nothing
	}
	faults := rec.drainFaults()
	if len(faults) != 1 || faults[0].Network != 1 {
		t.Fatalf("faults = %v, want network 1", faults)
	}
	if !strings.Contains(faults[0].Reason, "message monitor") {
		t.Fatalf("reason = %q", faults[0].Reason)
	}
}

func TestPassiveTokenMonitorFlagsLaggingNetwork(t *testing.T) {
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 2)
	var seq uint32
	for i := 0; i <= p.cfg.DiffThreshold; i++ {
		seq += 5
		p.OnPacket(0, 0, tokenBytes(t, seq, 0))
	}
	faults := rec.drainFaults()
	if len(faults) != 1 || faults[0].Network != 1 {
		t.Fatalf("faults = %v, want network 1 via token monitor", faults)
	}
}

func TestPassiveMonitorPerSenderIsolation(t *testing.T) {
	// One sender's traffic imbalance must not be masked by another's.
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 2)
	var seq uint32
	for i := 0; i < p.cfg.DiffThreshold/2; i++ {
		seq++
		p.OnPacket(0, 0, dataBytes(t, 3, seq))
		seq++
		p.OnPacket(0, 1, dataBytes(t, 4, seq))
	}
	if faults := rec.drainFaults(); len(faults) != 0 {
		t.Fatalf("balanced per-sender traffic raised faults: %v", faults)
	}
}

func TestPassiveReplenishForgivesSporadicLoss(t *testing.T) {
	// Requirement P5: occasional loss on one network, spread over time,
	// never accumulates into a fault when decay runs in between.
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 2)
	var seq uint32
	for round := 0; round < 4*p.cfg.DiffThreshold; round++ {
		// Alternating traffic with one extra reception on network 0 per
		// round (a sporadic loss on network 1)...
		seq++
		p.OnPacket(0, 0, dataBytes(t, 3, seq))
		seq++
		p.OnPacket(0, 1, dataBytes(t, 3, seq))
		seq++
		p.OnPacket(0, 0, dataBytes(t, 3, seq))
		// ...followed by a replenish tick.
		p.OnTimer(0, proto.TimerID{Class: proto.TimerRRPDecay})
	}
	if faults := rec.drainFaults(); len(faults) != 0 {
		t.Fatalf("sporadic loss raised faults: %v", faults)
	}
}

func TestPassiveNewerTokenReplacesHeldToken(t *testing.T) {
	rec := &recorder{missing: true}
	p := newPassiveForTest(t, rec, 2)
	p.OnPacket(0, 0, tokenBytes(t, 10, 0))
	p.OnPacket(0, 1, tokenBytes(t, 20, 0))
	rec.missing = false
	p.OnTimer(0, proto.TimerID{Class: proto.TimerRRPToken})
	if len(rec.delivered) != 1 {
		t.Fatalf("deliveries = %d", len(rec.delivered))
	}
	seq, _, err := peekTokenSeqForTest(rec.delivered[0])
	if err != nil || seq != 20 {
		t.Fatalf("released token seq = %d, want the newest (20)", seq)
	}
}

func TestPassiveFaultStopsCountingTowardLag(t *testing.T) {
	// After a network is declared faulty its frozen counter must not keep
	// raising faults.
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 3)
	var seq uint32
	for i := 0; i <= 3*p.cfg.DiffThreshold; i++ {
		seq++
		p.OnPacket(0, i%2, dataBytes(t, 3, seq)) // networks 0,1 only
	}
	faults := rec.drainFaults()
	if len(faults) != 1 || faults[0].Network != 2 {
		t.Fatalf("faults = %v, want exactly one fault on network 2", faults)
	}
}

func TestPassiveDisplacedHeldTokenAccounted(t *testing.T) {
	// Regression: a second token arriving while one was buffered silently
	// replaced p.held — the displaced frame was never recycled and neither
	// a probe nor a counter recorded that the old token was abandoned, so
	// heldSeq probes were attributed to a token that was already gone.
	rec := &recorder{missing: true}
	p := newPassiveForTest(t, rec, 2)
	var probes []proto.ProbeEvent
	rec.acts.SetProbe(func(e proto.ProbeEvent) { probes = append(probes, e) })
	p.OnPacket(0, 0, tokenBytes(t, 10, 0))
	p.OnPacket(0, 1, tokenBytes(t, 20, 0))
	if got := p.Stats().TokensDiscarded; got != 1 {
		t.Fatalf("TokensDiscarded = %d, want the displaced token counted", got)
	}
	var disc []proto.ProbeEvent
	for _, e := range probes {
		if e.Code == proto.ProbeTokenDiscarded {
			disc = append(disc, e)
		}
	}
	if len(disc) != 1 || disc[0].A != 10 || disc[0].Network != 1 {
		t.Fatalf("discard probes = %+v, want exactly one for the displaced seq 10 arriving on network 1", disc)
	}
	if p.heldSeq != 20 {
		t.Fatalf("heldSeq = %d, want the surviving token (20)", p.heldSeq)
	}
	// The timer releases exactly the surviving token, once.
	p.OnTimer(0, proto.TimerID{Class: proto.TimerRRPToken})
	if len(rec.delivered) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(rec.delivered))
	}
	if seq, _, _ := peekTokenSeqForTest(rec.delivered[0]); seq != 20 {
		t.Fatalf("released token seq = %d, want 20", seq)
	}
}

func TestPassiveChaosHeldTokenLeakRevertsFix(t *testing.T) {
	// The chaos flag must faithfully reintroduce the displaced-held-token
	// bug so the torture harness can prove its accounting invariant
	// catches it.
	Chaos.HeldTokenLeak = true
	t.Cleanup(func() { Chaos = ChaosFlags{} })
	rec := &recorder{missing: true}
	p := newPassiveForTest(t, rec, 2)
	p.OnPacket(0, 0, tokenBytes(t, 10, 0))
	p.OnPacket(0, 1, tokenBytes(t, 20, 0))
	if got := p.Stats().TokensDiscarded; got != 0 {
		t.Fatalf("TokensDiscarded = %d, chaos flag should restore the silent drop", got)
	}
}

func TestPassiveMonitorIgnoresConvictedNetworkTraffic(t *testing.T) {
	// Regression: faults are per-node, so peers that have not convicted a
	// network keep transmitting on it and those receptions still arrive
	// here. They used to feed the count monitor, whose counter for the
	// convicted network is excluded from the normalisation minimum — so it
	// grew without bound while the sole usable network held the minimum at
	// zero, breaching the headroom contract long after the original fault
	// healed. Receptions on a locally-convicted network must leave the
	// monitors untouched until readmission.
	rec := &recorder{missing: false}
	cfg := DefaultConfig(2, proto.ReplicationPassive)
	cfg.AutoReadmit = false
	rep, err := New(cfg, &rec.acts, rec.callbacks())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := rep.(*passive)
	var seq uint32
	// Drive network 1 into a fault the normal way.
	for i := 0; i <= p.cfg.DiffThreshold; i++ {
		seq++
		p.OnPacket(0, 0, dataBytes(t, 3, seq))
	}
	if faults := rec.drainFaults(); len(faults) != 1 || faults[0].Network != 1 {
		t.Fatalf("setup faults = %v, want network 1 convicted", faults)
	}
	// A peer that still trusts network 1 floods it; network 0 idles, so
	// normalisation cannot drain anything it would let in.
	bound := int64(2*p.cfg.DiffThreshold + 2)
	for i := 0; i < 10*p.cfg.DiffThreshold; i++ {
		seq++
		p.OnPacket(0, 1, dataBytes(t, 3, seq))
		p.OnPacket(0, 1, tokenBytes(t, seq, 0))
	}
	if h := monitorHeadroom(p.tokMon, p.msgMon); h > bound {
		t.Fatalf("monitor headroom %d exceeds bound %d: convicted-network receptions were counted", h, bound)
	}
}

func TestPassiveMonitorBoundedDuringMultiHourFault(t *testing.T) {
	// Regression: countMonitor.observe normalised with the minimum over
	// *all* networks, so a faulty network's frozen counter pinned the
	// minimum at zero and the healthy counters grew without bound for as
	// long as the fault lasted — contradicting the monitor's "never grow
	// unboundedly" contract. Three virtual hours of one-network traffic
	// must keep every counter under a fixed bound.
	rec := &recorder{missing: false}
	cfg := DefaultConfig(2, proto.ReplicationPassive)
	cfg.AutoReadmit = false // keep network 1 faulty for the whole run
	rep, err := New(cfg, &rec.acts, rec.callbacks())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p := rep.(*passive)
	var seq uint32
	// Drive network 1 into a fault the normal way.
	for i := 0; i <= p.cfg.DiffThreshold; i++ {
		seq++
		p.OnPacket(0, 0, dataBytes(t, 3, seq))
	}
	if faults := rec.drainFaults(); len(faults) != 1 || faults[0].Network != 1 {
		t.Fatalf("setup faults = %v, want network 1 convicted", faults)
	}
	// ~3 virtual hours: 50 messages and 5 token visits per decay window.
	bound := int64(2*p.cfg.DiffThreshold + 2)
	now := proto.Time(0)
	for tick := 0; tick < 3*3600; tick++ {
		for i := 0; i < 50; i++ {
			seq++
			p.OnPacket(now, 0, dataBytes(t, 3, seq))
		}
		for i := 0; i < 5; i++ {
			seq++
			p.OnPacket(now, 0, tokenBytes(t, seq, 0))
		}
		now += p.cfg.DecayInterval
		p.OnTimer(now, proto.TimerID{Class: proto.TimerRRPDecay})
		if h := monitorHeadroom(p.tokMon, p.msgMon); h > bound {
			t.Fatalf("monitor headroom %d exceeds bound %d after %v of fault", h, bound, now)
		}
		rec.acts.Drain()
	}
}

func TestPassiveChaosMonitorPinnedMinGrowsUnbounded(t *testing.T) {
	// The chaos flag must faithfully reintroduce the pinned-minimum bug so
	// the torture harness can prove its boundedness invariant catches it.
	Chaos.MonitorPinnedMin = true
	t.Cleanup(func() { Chaos = ChaosFlags{} })
	rec := &recorder{missing: false}
	p := newPassiveForTest(t, rec, 2)
	p.fault[1] = true
	var seq uint32
	bound := int64(2*p.cfg.DiffThreshold + 2)
	for i := 0; i < 4*p.cfg.DiffThreshold; i++ {
		seq++
		p.OnPacket(0, 0, dataBytes(t, 3, seq))
	}
	if h := monitorHeadroom(p.tokMon, p.msgMon); h <= bound {
		t.Fatalf("monitor headroom %d stayed under %d, chaos flag should restore unbounded growth", h, bound)
	}
}

func TestCountMonitorFrozenCounterSemantics(t *testing.T) {
	m := newCountMonitor(3)
	fault := []bool{false, false, true}
	m.recv[2] = 5 // frozen ahead of the healthy networks
	// While the frozen counter sits above the non-faulty minimum the fixed
	// normalisation is identical to the original one: the counter rides
	// down with every subtraction, preserving its differences.
	m.observe(0, fault)
	m.observe(1, fault) // non-faulty minimum hits 1 → subtract 1 everywhere
	if m.recv[0] != 0 || m.recv[1] != 0 || m.recv[2] != 4 {
		t.Fatalf("recv = %v, want frozen counter ridden down to 4", m.recv)
	}
	// At the floor it stops instead of going negative or (the bug) pinning
	// the minimum; healthy counters keep normalising to zero.
	for i := 0; i < 20; i++ {
		m.observe(0, fault)
		m.observe(1, fault)
	}
	if m.recv[0] != 0 || m.recv[1] != 0 || m.recv[2] != 0 {
		t.Fatalf("recv = %v, want every counter at the floor", m.recv)
	}
}

// peekKindForTest re-exports wire.PeekKind without an import cycle risk in
// these white-box tests.
func peekKindForTest(data []byte) (byte, error) {
	if len(data) < 4 {
		return 0, nil
	}
	return data[3], nil
}

func peekTokenSeqForTest(data []byte) (uint32, uint32, error) {
	if len(data) < 20 {
		return 0, 0, nil
	}
	return uint32(data[12])<<24 | uint32(data[13])<<16 | uint32(data[14])<<8 | uint32(data[15]),
		0, nil
}
