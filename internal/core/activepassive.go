package core

import (
	"fmt"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// activePassive implements active-passive replication (paper §7): every
// message and token is sent on K of the N networks, with the K-wide window
// advancing round-robin by one network per send. The receiver is a
// two-stage pipeline: the first stage runs the passive-style count
// monitors on everything it sees; the second stage passes a token up once
// K copies have been received or the token timer expires. Duplicate
// messages are suppressed higher up in the SRP (paper §7).
type activePassive struct {
	base

	msgStart int
	tokStart int

	haveToken bool
	lastKey   tokenKey
	lastTok   []byte
	copies    int
	delivered bool

	msgMon map[proto.NodeID]*countMonitor
	tokMon *countMonitor
}

func newActivePassive(cfg Config, acts *proto.Actions, cb Callbacks) *activePassive {
	return &activePassive{
		base:     newBase(cfg, acts, cb),
		msgStart: cfg.Networks - 1,
		tokStart: cfg.Networks - 1,
		msgMon:   make(map[proto.NodeID]*countMonitor),
		tokMon:   newCountMonitor(cfg.Networks),
	}
}

// Style implements Replicator.
func (ap *activePassive) Style() proto.ReplicationStyle { return proto.ReplicationActivePassive }

// Readmit implements Replicator.
func (ap *activePassive) Readmit(network int) {
	if network < 0 || network >= ap.cfg.Networks || !ap.fault[network] {
		return
	}
	ap.readmitCommon(network)
	ap.tokMon.readmit(network)
	for _, mon := range ap.msgMon {
		mon.readmit(network)
	}
}

// Start implements Replicator.
func (ap *activePassive) Start(now proto.Time) {
	ap.acts.SetTimer(proto.TimerID{Class: proto.TimerRRPDecay}, ap.cfg.DecayInterval)
}

// sendK transmits on the K non-faulty networks starting after *start,
// advancing the window start by one (paper §7).
func (ap *activePassive) sendK(start *int, dest proto.NodeID, data []byte) {
	*start = (*start + 1) % ap.cfg.Networks
	sent := 0
	for off := 0; off < ap.cfg.Networks && sent < ap.effectiveK(); off++ {
		i := (*start + off) % ap.cfg.Networks
		if ap.fault[i] {
			continue
		}
		ap.send(i, dest, data)
		sent++
	}
}

// effectiveK caps K at the number of usable networks.
func (ap *activePassive) effectiveK() int {
	if nf := ap.nonFaultyCount(); nf < ap.cfg.K {
		return nf
	}
	return ap.cfg.K
}

// SendMessage implements Replicator.
func (ap *activePassive) SendMessage(data []byte) {
	ap.sendK(&ap.msgStart, proto.BroadcastID, data)
	ap.probeSend(proto.BroadcastID, data)
}

// SendToken implements Replicator.
func (ap *activePassive) SendToken(dest proto.NodeID, data []byte) {
	ap.sendK(&ap.tokStart, dest, data)
	ap.probeSend(dest, data)
}

// OnPacket implements Replicator.
func (ap *activePassive) OnPacket(now proto.Time, network int, data []byte) {
	ap.met.rx[network].Inc()
	kind, err := wire.PeekKind(data)
	if err != nil {
		return
	}
	switch kind {
	case wire.KindData:
		// Stage 1: monitor original transmissions only (retransmissions
		// are not round-robin assigned); stage 2 forwards messages
		// unconditionally — duplicates die in the SRP sequence filter.
		if flags, err := wire.PeekDataFlags(data); err == nil && flags&wire.FlagRetrans == 0 {
			if sender, err := wire.PeekSender(data); err == nil {
				ap.observeMessage(now, sender, network)
			}
		}
		ap.cb.Deliver(now, data)
	case wire.KindToken:
		ap.observeToken(now, network)
		seq, rot, err := wire.PeekTokenSeq(data)
		if err != nil {
			return
		}
		ring, err := wire.PeekRing(data)
		if err != nil {
			return
		}
		key := tokenKey{ring: ring, seq: seq, rotation: rot}
		switch {
		case !ap.haveToken || key.newer(ap.lastKey):
			ap.haveToken = true
			ap.lastKey = key
			ap.lastTok = data
			ap.copies = 1
			ap.delivered = false
			ap.acts.Probe(proto.ProbeTokenGathered, network, int64(seq), int64(rot), 0)
			ap.acts.SetTimer(proto.TimerID{Class: proto.TimerRRPToken}, ap.cfg.TokenTimeout)
		case key == ap.lastKey:
			if ap.delivered {
				ap.met.tokensDiscarded.Inc()
				ap.acts.Probe(proto.ProbeTokenDiscarded, network, int64(seq), 0, 0)
				return
			}
			ap.copies++
		default:
			ap.met.tokensDiscarded.Inc()
			ap.acts.Probe(proto.ProbeTokenDiscarded, network, int64(seq), 0, 0)
			return
		}
		if !ap.delivered && ap.copies >= ap.effectiveK() {
			ap.delivered = true
			ap.acts.CancelTimer(proto.TimerID{Class: proto.TimerRRPToken})
			ap.met.tokensGated.Inc()
			ap.acts.Probe(proto.ProbeTokenGated, -1, int64(ap.lastKey.seq), 0, 0)
			ap.cb.Deliver(now, ap.lastTok)
		}
	default:
		ap.cb.Deliver(now, data)
	}
}

// OnTimer implements Replicator.
func (ap *activePassive) OnTimer(now proto.Time, id proto.TimerID) {
	switch id.Class {
	case proto.TimerRRPToken:
		if ap.delivered || !ap.haveToken {
			return
		}
		ap.delivered = true
		ap.met.tokensTimedOut.Inc()
		ap.acts.Probe(proto.ProbeTokenTimedOut, -1, int64(ap.lastKey.seq), 0, 0)
		ap.cb.Deliver(now, ap.lastTok)
	case proto.TimerRRPDecay:
		ap.tokMon.replenish(ap.fault)
		for _, mon := range ap.msgMon {
			mon.replenish(ap.fault)
		}
		ap.acts.Probe(proto.ProbeMonitorDecay, -1, int64(ap.rec.windows), monitorHeadroom(ap.tokMon, ap.msgMon), 0)
		ap.recoveryTick(now, ap.Readmit)
		ap.acts.SetTimer(proto.TimerID{Class: proto.TimerRRPDecay}, ap.cfg.DecayInterval)
	}
}

func (ap *activePassive) observeToken(now proto.Time, network int) {
	if lag := ap.tokMon.observe(network, ap.fault); lag >= 0 && ap.tokMon.diff(lag) > ap.cfg.TokenDiffThreshold {
		if ap.inReadmitGrace(lag) {
			// The lag accrued while slower peers were still excluding the
			// repaired network; discard it instead of convicting.
			ap.tokMon.readmit(lag)
			return
		}
		ap.acts.Probe(proto.ProbeMonitorThreshold, lag, int64(ap.tokMon.diff(lag)), int64(ap.cfg.TokenDiffThreshold), 0)
		ap.markFaulty(now, lag, fmt.Sprintf(
			"active-passive token monitor: network lags by %d receptions", ap.tokMon.diff(lag)))
	}
}

func (ap *activePassive) observeMessage(now proto.Time, sender proto.NodeID, network int) {
	mon := ap.msgMon[sender]
	if mon == nil {
		mon = newCountMonitor(ap.cfg.Networks)
		ap.msgMon[sender] = mon
	}
	if lag := mon.observe(network, ap.fault); lag >= 0 && mon.diff(lag) > ap.cfg.DiffThreshold {
		if ap.inReadmitGrace(lag) {
			mon.readmit(lag)
			return
		}
		ap.acts.Probe(proto.ProbeMonitorThreshold, lag, int64(mon.diff(lag)), int64(ap.cfg.DiffThreshold), 0)
		ap.markFaulty(now, lag, fmt.Sprintf(
			"active-passive message monitor (sender %v): network lags by %d receptions", sender, mon.diff(lag)))
	}
}

var _ Replicator = (*activePassive)(nil)
