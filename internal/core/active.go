package core

import (
	"fmt"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// active implements active replication (paper §5, Fig. 2): every message
// and token is sent on all non-faulty networks. Messages are passed up
// immediately (duplicates are suppressed by the SRP sequence filter —
// requirement A1); a token is passed up only once a copy has arrived on
// every non-faulty network (A2/A3) or the token timer expires (A4).
// Per-network problem counters detect permanently failed networks (A5)
// and are decayed periodically so sporadic loss never accumulates into a
// false verdict (A6).
type active struct {
	base

	haveToken bool
	lastKey   tokenKey
	lastTok   []byte
	recvLast  []bool
	delivered bool
	problem   []int
}

type tokenKey struct {
	ring     proto.RingID
	seq      uint32
	rotation uint32
}

// newer reports whether k supersedes o. A token from a different ring is
// always a new generation: each configuration restarts the sequence space,
// so (seq, rotation) pairs are only comparable within one ring. Stale-ring
// tokens handed up are discarded by the SRP's ring filter.
func (k tokenKey) newer(o tokenKey) bool {
	if k.ring != o.ring {
		return true
	}
	return k.seq > o.seq || (k.seq == o.seq && k.rotation > o.rotation)
}

func newActive(cfg Config, acts *proto.Actions, cb Callbacks) *active {
	return &active{
		base:     newBase(cfg, acts, cb),
		recvLast: make([]bool, cfg.Networks),
		problem:  make([]int, cfg.Networks),
	}
}

// Style implements Replicator.
func (a *active) Style() proto.ReplicationStyle { return proto.ReplicationActive }

// Readmit implements Replicator.
func (a *active) Readmit(network int) {
	if network < 0 || network >= a.cfg.Networks || !a.fault[network] {
		return
	}
	a.readmitCommon(network)
	a.problem[network] = 0
	// Treat the in-flight token generation as already received on the
	// repaired network so the gate does not stall waiting for a copy that
	// was never sent there.
	if a.haveToken && !a.delivered {
		a.recvLast[network] = true
	}
}

// Start implements Replicator.
func (a *active) Start(now proto.Time) {
	a.acts.SetTimer(proto.TimerID{Class: proto.TimerRRPDecay}, a.cfg.DecayInterval)
}

// SendMessage implements Replicator: broadcast on all non-faulty networks,
// in network order (paper §5).
func (a *active) SendMessage(data []byte) {
	for i := 0; i < a.cfg.Networks; i++ {
		if !a.fault[i] {
			a.send(i, proto.BroadcastID, data)
		}
	}
	a.probeSend(proto.BroadcastID, data)
}

// SendToken implements Replicator.
func (a *active) SendToken(dest proto.NodeID, data []byte) {
	for i := 0; i < a.cfg.Networks; i++ {
		if !a.fault[i] {
			a.send(i, dest, data)
		}
	}
	a.probeSend(dest, data)
}

// OnPacket implements Replicator.
func (a *active) OnPacket(now proto.Time, network int, data []byte) {
	a.met.rx[network].Inc()
	kind, err := wire.PeekKind(data)
	if err != nil {
		return
	}
	if kind != wire.KindToken {
		// Messages (and joins/commits) go straight up; the SRP filters
		// duplicates by sequence number (requirement A1).
		a.cb.Deliver(now, data)
		return
	}
	seq, rot, err := wire.PeekTokenSeq(data)
	if err != nil {
		return
	}
	ring, err := wire.PeekRing(data)
	if err != nil {
		return
	}
	key := tokenKey{ring: ring, seq: seq, rotation: rot}
	switch {
	case !a.haveToken || key.newer(a.lastKey):
		// First copy of a new token generation.
		a.haveToken = true
		a.lastKey = key
		a.lastTok = data
		for i := range a.recvLast {
			a.recvLast[i] = false
		}
		a.recvLast[network] = true
		a.delivered = false
		a.acts.Probe(proto.ProbeTokenGathered, network, int64(seq), int64(rot), 0)
		// The timer is armed exactly once per generation: a new token can
		// only arrive after the current one completes a rotation.
		timeout := a.cfg.TokenTimeout
		if Chaos.ImpatientGate {
			timeout = 0
		}
		a.acts.SetTimer(proto.TimerID{Class: proto.TimerRRPToken}, timeout)
	case key == a.lastKey:
		a.recvLast[network] = true
		if a.delivered {
			// All copies after release are ignored (requirement A4).
			a.met.tokensDiscarded.Inc()
			a.acts.Probe(proto.ProbeTokenDiscarded, network, int64(seq), 0, 0)
			return
		}
	default:
		// Older than the current generation: a straggler from a slower
		// network; never triggers anything (requirement A2).
		a.met.tokensDiscarded.Inc()
		a.acts.Probe(proto.ProbeTokenDiscarded, network, int64(seq), 0, 0)
		return
	}
	if a.delivered {
		return
	}
	for i := 0; i < a.cfg.Networks; i++ {
		if !a.fault[i] && !a.recvLast[i] {
			return // keep gathering copies (requirements A2, A3)
		}
	}
	a.delivered = true
	a.acts.CancelTimer(proto.TimerID{Class: proto.TimerRRPToken})
	a.met.tokensGated.Inc()
	a.acts.Probe(proto.ProbeTokenGated, -1, int64(a.lastKey.seq), 0, 0)
	a.cb.Deliver(now, a.lastTok)
}

// OnTimer implements Replicator.
func (a *active) OnTimer(now proto.Time, id proto.TimerID) {
	switch id.Class {
	case proto.TimerRRPToken:
		if a.delivered || !a.haveToken {
			return
		}
		// Networks that failed to deliver this token get charged
		// (requirement A5)...
		for i := 0; i < a.cfg.Networks; i++ {
			if a.fault[i] || a.recvLast[i] {
				continue
			}
			a.problem[i]++
			if a.problem[i] >= a.cfg.ProblemThreshold {
				if a.inReadmitGrace(i) {
					// Losses across the peers' readmission skew are not
					// evidence against the repaired network; drop them.
					a.problem[i] = 0
					continue
				}
				a.acts.Probe(proto.ProbeMonitorThreshold, i, int64(a.problem[i]), int64(a.cfg.ProblemThreshold), 0)
				a.markFaulty(now, i, fmt.Sprintf(
					"active monitor: %d consecutive token losses", a.problem[i]))
			}
		}
		// ...and the protocol makes progress regardless (requirement A4).
		a.delivered = true
		a.met.tokensTimedOut.Inc()
		a.acts.Probe(proto.ProbeTokenTimedOut, -1, int64(a.lastKey.seq), 0, 0)
		a.cb.Deliver(now, a.lastTok)
	case proto.TimerRRPDecay:
		// Requirement A6: slowly forgive sporadic losses.
		for i := range a.problem {
			if a.problem[i] > 0 {
				a.problem[i]--
			}
		}
		a.acts.Probe(proto.ProbeMonitorDecay, -1, int64(a.rec.windows), 0, 0)
		a.recoveryTick(now, a.Readmit)
		a.acts.SetTimer(proto.TimerID{Class: proto.TimerRRPDecay}, a.cfg.DecayInterval)
	}
}

var _ Replicator = (*active)(nil)
