// Package core implements the Totem Redundant Ring Protocol (RRP) — the
// paper's primary contribution: a replication layer inserted between the
// Totem SRP and N redundant local-area networks.
//
// The layer decides which network(s) carry each message and token
// (replication styles: active §5, passive §6, active-passive §7), gates
// tokens so that retransmissions are never triggered by cross-network
// reordering (requirements A2/P1) and networks stay synchronised (A3/P2),
// guarantees progress under loss via token timers (A4/P3), and monitors
// network health locally — raising fault reports without ever probing the
// network (A5/A6, P4/P5, §3).
package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/totem-rrp/totem/internal/metrics"
	"github.com/totem-rrp/totem/internal/proto"
)

// Callbacks connect a replicator to the SRP machine above it.
type Callbacks struct {
	// Deliver hands one packet up to the SRP. The replicator controls
	// ordering: e.g. passive replication delivers a buffered token right
	// after the message that filled the last gap (paper Fig. 4).
	Deliver func(now proto.Time, data []byte)
	// Missing reports whether the SRP is still missing any packet with a
	// sequence number at or below seq (passive replication's
	// anyMessagesMissing check).
	Missing func(seq uint32) bool
}

// Replicator is the RRP layer interface. Implementations are pure state
// machines: sends are emitted as proto.SendPacket actions, timers via
// SetTimer, fault reports via Fault.
type Replicator interface {
	// Start arms the periodic monitor-decay timer.
	Start(now proto.Time)
	// SendMessage maps one SRP broadcast onto the networks. The packet is
	// encoded exactly once: every emitted SendPacket action references the
	// same read-only data slice, and the replicator retains no reference
	// after returning, so the caller's buffer ownership passes intact to
	// the driver (which may pool KindData frames; see wire.PutFrame).
	SendMessage(data []byte)
	// SendToken maps one SRP token unicast onto the networks. Unlike
	// messages, token buffers may be retained by the replicator (passive
	// replication holds the last token for gating) and by the SRP for
	// retransmission, so they must not come from the frame pool.
	SendToken(dest proto.NodeID, data []byte)
	// OnPacket processes a packet received on the given network,
	// delivering upward through the callbacks as appropriate.
	OnPacket(now proto.Time, network int, data []byte)
	// OnTimer handles an RRP timer expiry.
	OnTimer(now proto.Time, id proto.TimerID)
	// Faulty returns a copy of the per-network fault flags.
	Faulty() []bool
	// Readmit clears the faulty verdict on a repaired network (the
	// administrator's action after reacting to the alarm, paper §3). The
	// monitors restart from a clean slate for that network.
	Readmit(network int)
	// Style identifies the replication style.
	Style() proto.ReplicationStyle
	// Stats returns a snapshot of the layer's counters.
	Stats() Stats
}

// Stats counts RRP-layer events.
type Stats struct {
	// TxPackets and RxPackets count per-network traffic.
	TxPackets []uint64
	RxPackets []uint64
	// TokensGated counts tokens delivered upward after full gathering
	// (active) or gap-free arrival (passive).
	TokensGated uint64
	// TokensTimedOut counts tokens released by the token timer.
	TokensTimedOut uint64
	// TokensDiscarded counts stale or duplicate token copies dropped.
	TokensDiscarded uint64
	// FaultsRaised counts networks declared faulty.
	FaultsRaised uint64
	// FaultsCleared counts networks automatically readmitted by the
	// recovery monitor after a clean probation period.
	FaultsCleared uint64
	// Readmits counts every successful readmission, automatic or manual
	// (operator-driven Readmit calls).
	Readmits uint64
	// FlapBackoffs counts re-faults within the flap window of the previous
	// readmission; each one doubles the network's next probation.
	FlapBackoffs uint64
	// ProbesSent counts recovery-monitor probe packets sent on faulted
	// networks during probation.
	ProbesSent uint64
}

// Config parameterises a replicator.
type Config struct {
	// Networks is N, the number of redundant networks (>= 1).
	Networks int
	// Style selects the replication style.
	Style proto.ReplicationStyle
	// K is the number of copies for active-passive replication
	// (1 < K < Networks).
	K int

	// TokenTimeout bounds the wait for the remaining token copies in
	// active and active-passive replication (requirement A4).
	TokenTimeout time.Duration
	// TokenHold bounds how long passive replication buffers a token while
	// messages are outstanding (paper §6 uses 10 ms).
	TokenHold time.Duration
	// ProblemThreshold is the active-replication problem-counter limit
	// beyond which a network is declared faulty (requirement A5).
	ProblemThreshold int
	// DiffThreshold is the passive-replication message-monitor limit on
	// the difference between per-network reception counts (requirement
	// P4).
	DiffThreshold int
	// TokenDiffThreshold is the same limit for the token monitor. Tokens
	// arrive once per rotation, so a much smaller threshold detects a
	// dead network before the token-loss timer can fire, while remaining
	// far above any plausible sporadic loss within one decay period.
	TokenDiffThreshold int
	// DecayInterval drives the periodic problem-counter decay (active)
	// and lagging-counter replenishment (passive), preventing sporadic
	// loss from accumulating into a false fault (requirements A6/P5).
	DecayInterval time.Duration

	// AutoReadmit enables the recovery monitor: a faulty network that
	// shows clean receptions for ProbationWindows consecutive decay
	// windows is readmitted automatically and a FaultCleared report is
	// emitted. When false, readmission stays a purely manual operator
	// action (the paper's §3 model).
	AutoReadmit bool
	// ProbationWindows is the number of consecutive decay windows with
	// receptions a faulty network must serve before automatic readmission.
	ProbationWindows int
	// FlapWindow bounds flap detection: a network that re-faults within
	// FlapWindow of its last readmission has its next probation doubled.
	FlapWindow time.Duration
	// MaxProbation caps the exponential probation growth, in decay
	// windows; a persistently flapping network converges to spending
	// MaxProbation windows disabled between (rare) readmissions.
	MaxProbation int

	// Metrics, when non-nil, is the registry the replicator registers its
	// counters in (names under "rrp."). Nil gets a private registry, so
	// Stats keeps working for callers that never wire one up.
	Metrics *metrics.Registry
}

// DefaultConfig returns the defaults from DESIGN.md §6.
func DefaultConfig(networks int, style proto.ReplicationStyle) Config {
	return Config{
		Networks:           networks,
		Style:              style,
		K:                  2,
		TokenTimeout:       5 * time.Millisecond,
		TokenHold:          10 * time.Millisecond,
		ProblemThreshold:   10,
		DiffThreshold:      50,
		TokenDiffThreshold: 8,
		DecayInterval:      time.Second,
		AutoReadmit:        true,
		ProbationWindows:   3,
		FlapWindow:         10 * time.Second,
		MaxProbation:       60,
	}
}

// Configuration errors.
var (
	ErrBadNetworks = errors.New("core: invalid network count for style")
	ErrBadStyle    = errors.New("core: unknown replication style")
	ErrBadK        = errors.New("core: active-passive requires 1 < K < N")
	ErrBadTimer    = errors.New("core: timer intervals must be positive")
	ErrBadReadmit  = errors.New("core: invalid auto-readmit parameters")
)

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.Style.Valid() {
		return ErrBadStyle
	}
	switch c.Style {
	case proto.ReplicationNone:
		if c.Networks < 1 {
			return fmt.Errorf("%w: need >= 1, have %d", ErrBadNetworks, c.Networks)
		}
	case proto.ReplicationActive, proto.ReplicationPassive:
		if c.Networks < 2 {
			return fmt.Errorf("%w: %v needs >= 2, have %d", ErrBadNetworks, c.Style, c.Networks)
		}
	case proto.ReplicationActivePassive:
		if c.Networks < 3 {
			// Paper §7: active-passive needs at least three networks.
			return fmt.Errorf("%w: active-passive needs >= 3, have %d", ErrBadNetworks, c.Networks)
		}
		if c.K <= 1 || c.K >= c.Networks {
			return fmt.Errorf("%w: K=%d, N=%d", ErrBadK, c.K, c.Networks)
		}
	}
	if c.TokenTimeout <= 0 || c.TokenHold <= 0 || c.DecayInterval <= 0 {
		return ErrBadTimer
	}
	if c.ProblemThreshold <= 0 || c.DiffThreshold <= 0 || c.TokenDiffThreshold <= 0 {
		return fmt.Errorf("%w: thresholds must be positive", ErrBadTimer)
	}
	if c.AutoReadmit {
		if c.ProbationWindows <= 0 {
			return fmt.Errorf("%w: ProbationWindows must be positive with AutoReadmit", ErrBadReadmit)
		}
		if c.MaxProbation < c.ProbationWindows {
			return fmt.Errorf("%w: MaxProbation %d < ProbationWindows %d", ErrBadReadmit, c.MaxProbation, c.ProbationWindows)
		}
		if c.FlapWindow <= 0 {
			return fmt.Errorf("%w: FlapWindow must be positive with AutoReadmit", ErrBadReadmit)
		}
	}
	return nil
}

// New builds the replicator for cfg.Style.
func New(cfg Config, acts *proto.Actions, cb Callbacks) (Replicator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if acts == nil || cb.Deliver == nil || cb.Missing == nil {
		return nil, errors.New("core: nil action buffer or callbacks")
	}
	switch cfg.Style {
	case proto.ReplicationNone:
		return newNone(cfg, acts, cb), nil
	case proto.ReplicationActive:
		return newActive(cfg, acts, cb), nil
	case proto.ReplicationPassive:
		return newPassive(cfg, acts, cb), nil
	case proto.ReplicationActivePassive:
		return newActivePassive(cfg, acts, cb), nil
	default:
		return nil, ErrBadStyle
	}
}

// base carries the state shared by every replicator: fault flags, traffic
// counters and the declare-faulty rule. A node never sends on a network it
// has marked faulty but keeps accepting from it (paper §3); the last
// non-faulty network is never marked, since the protocol cannot operate
// with zero networks — the monitor keeps reporting instead.
type base struct {
	cfg   Config
	acts  *proto.Actions
	cb    Callbacks
	fault []bool
	met   coreCounters
	rec   recoveryState
}

func newBase(cfg Config, acts *proto.Actions, cb Callbacks) base {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return base{
		cfg:   cfg,
		acts:  acts,
		cb:    cb,
		fault: make([]bool, cfg.Networks),
		met:   newCoreCounters(reg, cfg.Networks),
		rec:   newRecoveryState(cfg),
	}
}

// Faulty implements part of Replicator.
func (b *base) Faulty() []bool {
	return append([]bool(nil), b.fault...)
}

// Stats implements part of Replicator: a thin view rebuilt from the
// metrics registry for API compatibility.
func (b *base) Stats() Stats {
	s := Stats{
		TxPackets:       make([]uint64, len(b.met.tx)),
		RxPackets:       make([]uint64, len(b.met.rx)),
		TokensGated:     b.met.tokensGated.Count(),
		TokensTimedOut:  b.met.tokensTimedOut.Count(),
		TokensDiscarded: b.met.tokensDiscarded.Count(),
		FaultsRaised:    b.met.faultsRaised.Count(),
		FaultsCleared:   b.met.faultsCleared.Count(),
		Readmits:        b.met.readmits.Count(),
		FlapBackoffs:    b.met.flapBackoffs.Count(),
		ProbesSent:      b.met.probesSent.Count(),
	}
	for i := range b.met.tx {
		s.TxPackets[i] = b.met.tx[i].Count()
		s.RxPackets[i] = b.met.rx[i].Count()
	}
	return s
}

// nonFaultyCount returns the number of usable networks.
func (b *base) nonFaultyCount() int {
	n := 0
	for _, f := range b.fault {
		if !f {
			n++
		}
	}
	return n
}

// markFaulty declares network i faulty and raises a fault report, unless
// it is the last usable network.
func (b *base) markFaulty(now proto.Time, i int, reason string) {
	if b.fault[i] {
		return
	}
	if b.inReadmitGrace(i) {
		// A freshly readmitted network misses the traffic of peers whose
		// own readmission lags by a window; convicting it again on that
		// evidence would be a spurious flap. Genuine faults re-raise as
		// soon as the grace expires.
		return
	}
	if b.nonFaultyCount() <= 1 {
		// Refusing to disable the last network keeps the system up; the
		// operator still gets the alarm.
		b.acts.Fault(proto.FaultReport{
			Network: i,
			Reason:  reason + " (last usable network: not disabled)",
			Time:    now,
		})
		return
	}
	b.fault[i] = true
	b.met.faultsRaised.Inc()
	b.acts.Fault(proto.FaultReport{Network: i, Reason: reason, Time: now})
	b.noteFault(i)
}

// send transmits on network i and counts it. The same data slice is
// shared by every network's SendPacket action — fan-out never copies.
func (b *base) send(network int, dest proto.NodeID, data []byte) {
	b.acts.Send(network, dest, data)
	b.met.tx[network].Inc()
}
