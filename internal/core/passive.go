package core

import (
	"fmt"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// passive implements passive replication (paper §6, Figs. 4–5): each
// message and token travels on exactly one network, assigned round-robin.
// A token that arrives while messages are outstanding is buffered and
// released either by the message that fills the last gap or by a short
// token timer (requirements P1/P3). Per-sender message monitors and a
// token monitor compare per-network reception counts and declare the
// lagging network faulty (P4), with slow replenishment of lagging counters
// so sporadic loss is forgiven (P5).
type passive struct {
	base

	sendMsgVia int
	sendTokVia int

	held    []byte
	heldSeq uint32
	holding bool

	msgMon map[proto.NodeID]*countMonitor
	tokMon *countMonitor
}

func newPassive(cfg Config, acts *proto.Actions, cb Callbacks) *passive {
	return &passive{
		base:       newBase(cfg, acts, cb),
		sendMsgVia: cfg.Networks - 1, // first send advances to network 0
		sendTokVia: cfg.Networks - 1,
		msgMon:     make(map[proto.NodeID]*countMonitor),
		tokMon:     newCountMonitor(cfg.Networks),
	}
}

// Style implements Replicator.
func (p *passive) Style() proto.ReplicationStyle { return proto.ReplicationPassive }

// Readmit implements Replicator.
func (p *passive) Readmit(network int) {
	if network < 0 || network >= p.cfg.Networks || !p.fault[network] {
		return
	}
	p.readmitCommon(network)
	p.tokMon.readmit(network)
	for _, mon := range p.msgMon {
		mon.readmit(network)
	}
}

// Start implements Replicator.
func (p *passive) Start(now proto.Time) {
	p.acts.SetTimer(proto.TimerID{Class: proto.TimerRRPDecay}, p.cfg.DecayInterval)
}

// nextVia advances a round-robin pointer past faulty networks.
func (p *passive) nextVia(via int) int {
	for range p.fault {
		via = (via + 1) % p.cfg.Networks
		if !p.fault[via] {
			return via
		}
	}
	return via // all faulty cannot happen: the last network is never marked
}

// SendMessage implements Replicator.
func (p *passive) SendMessage(data []byte) {
	p.sendMsgVia = p.nextVia(p.sendMsgVia)
	p.send(p.sendMsgVia, proto.BroadcastID, data)
	p.probeSend(proto.BroadcastID, data)
}

// SendToken implements Replicator.
func (p *passive) SendToken(dest proto.NodeID, data []byte) {
	p.sendTokVia = p.nextVia(p.sendTokVia)
	p.send(p.sendTokVia, dest, data)
	p.probeSend(dest, data)
}

// OnPacket implements Replicator.
func (p *passive) OnPacket(now proto.Time, network int, data []byte) {
	p.met.rx[network].Inc()
	kind, err := wire.PeekKind(data)
	if err != nil {
		return
	}
	switch kind {
	case wire.KindToken:
		p.observeToken(now, network)
		seq, _, err := wire.PeekTokenSeq(data)
		if err != nil {
			return
		}
		if !p.cb.Missing(seq) {
			p.met.tokensGated.Inc()
			p.acts.Probe(proto.ProbeTokenGated, network, int64(seq), 0, 0)
			p.cb.Deliver(now, data)
			return
		}
		// Buffer the token behind the outstanding messages (requirement
		// P1: a delayed message must never trigger a retransmission).
		if p.held != nil && !Chaos.HeldTokenLeak {
			// A second token displaces the buffered one. The displaced
			// token will never be delivered, so account for it as a
			// discard and recycle its frame: received control frames are
			// private pooled-capacity copies in the real transports, and
			// once the replicator decides not to deliver one it holds the
			// only live reference. (In the simulator token buffers are not
			// pool-capacity, so PutFrame is a no-op there.) Dropping it
			// silently both leaked the frame and left the probe stream
			// attributing the hold to a token that was already gone.
			p.met.tokensDiscarded.Inc()
			p.acts.Probe(proto.ProbeTokenDiscarded, network, int64(p.heldSeq), 0, 0)
			wire.PutFrame(p.held)
		}
		p.held = data
		p.heldSeq = seq
		if !p.holding {
			// The token timer is never restarted while active (paper §6).
			p.holding = true
			p.acts.SetTimer(proto.TimerID{Class: proto.TimerRRPToken}, p.cfg.TokenHold)
		}
	case wire.KindData:
		// Retransmissions are reactive gap-fills, not round-robin
		// assigned, so they would distort the count-difference monitors;
		// only original transmissions are counted.
		if flags, err := wire.PeekDataFlags(data); err == nil && flags&wire.FlagRetrans == 0 {
			if sender, err := wire.PeekSender(data); err == nil {
				p.observeMessage(now, sender, network)
			}
		}
		p.cb.Deliver(now, data)
		// Fast release (paper §6): if this message filled the last gap,
		// the buffered token can go up now instead of waiting out the
		// timer.
		if p.holding && !p.cb.Missing(p.heldSeq) {
			p.releaseHeld(now, false)
		}
	default:
		p.cb.Deliver(now, data)
	}
}

// releaseHeld delivers the buffered token.
func (p *passive) releaseHeld(now proto.Time, byTimer bool) {
	p.holding = false
	p.acts.CancelTimer(proto.TimerID{Class: proto.TimerRRPToken})
	held := p.held
	p.held = nil
	if held == nil {
		return
	}
	if byTimer {
		p.met.tokensTimedOut.Inc()
		p.acts.Probe(proto.ProbeTokenTimedOut, -1, int64(p.heldSeq), 0, 0)
	} else {
		p.met.tokensGated.Inc()
		p.acts.Probe(proto.ProbeTokenGated, -1, int64(p.heldSeq), 0, 0)
	}
	p.cb.Deliver(now, held)
}

// OnTimer implements Replicator.
func (p *passive) OnTimer(now proto.Time, id proto.TimerID) {
	switch id.Class {
	case proto.TimerRRPToken:
		if p.holding {
			// Requirement P3: progress even if the missing message never
			// arrives — the SRP's retransmission machinery takes over.
			p.holding = false
			held := p.held
			p.held = nil
			if held != nil {
				p.met.tokensTimedOut.Inc()
				p.acts.Probe(proto.ProbeTokenTimedOut, -1, int64(p.heldSeq), 0, 0)
				p.cb.Deliver(now, held)
			}
		}
	case proto.TimerRRPDecay:
		// Requirement P5: replenish lagging counters so that sporadic
		// losses accumulated over hours never fault a healthy network.
		p.tokMon.replenish(p.fault)
		for _, mon := range p.msgMon {
			mon.replenish(p.fault)
		}
		p.acts.Probe(proto.ProbeMonitorDecay, -1, int64(p.rec.windows), monitorHeadroom(p.tokMon, p.msgMon), 0)
		p.recoveryTick(now, p.Readmit)
		p.acts.SetTimer(proto.TimerID{Class: proto.TimerRRPDecay}, p.cfg.DecayInterval)
	}
}

// observeToken feeds the token monitor (paper Fig. 5). The token monitor
// only sees the unicast path to this node, but remains useful when no
// messages flow (paper §6).
func (p *passive) observeToken(now proto.Time, network int) {
	if lag := p.tokMon.observe(network, p.fault); lag >= 0 && p.tokMon.diff(lag) > p.cfg.TokenDiffThreshold {
		if p.inReadmitGrace(lag) {
			// The lag accrued while slower peers were still excluding the
			// repaired network; discard it instead of convicting.
			p.tokMon.readmit(lag)
			return
		}
		p.acts.Probe(proto.ProbeMonitorThreshold, lag, int64(p.tokMon.diff(lag)), int64(p.cfg.TokenDiffThreshold), 0)
		p.markFaulty(now, lag, fmt.Sprintf(
			"passive token monitor: network lags by %d receptions", p.tokMon.diff(lag)))
	}
}

// observeMessage feeds the per-sender message monitor (paper §6: one
// monitoring module per node).
func (p *passive) observeMessage(now proto.Time, sender proto.NodeID, network int) {
	mon := p.msgMon[sender]
	if mon == nil {
		mon = newCountMonitor(p.cfg.Networks)
		p.msgMon[sender] = mon
	}
	if lag := mon.observe(network, p.fault); lag >= 0 && mon.diff(lag) > p.cfg.DiffThreshold {
		if p.inReadmitGrace(lag) {
			mon.readmit(lag)
			return
		}
		p.acts.Probe(proto.ProbeMonitorThreshold, lag, int64(mon.diff(lag)), int64(p.cfg.DiffThreshold), 0)
		p.markFaulty(now, lag, fmt.Sprintf(
			"passive message monitor (sender %v): network lags by %d receptions", sender, mon.diff(lag)))
	}
}

// countMonitor is the monitoring module of paper Fig. 5: it counts
// receptions per network and flags the network whose count falls more
// than a threshold behind the maximum.
type countMonitor struct {
	recv []int64
}

func newCountMonitor(n int) *countMonitor {
	return &countMonitor{recv: make([]int64, n)}
}

// observe counts a reception on network and returns the index of the
// most-lagging non-faulty network, or -1 when none lags. It also
// normalises the counters so they never grow unboundedly.
func (m *countMonitor) observe(network int, fault []bool) int {
	if fault[network] {
		// Faults are per-node: peers that have not convicted this network
		// keep transmitting on it, and those receptions still arrive here.
		// Counting them would grow a convicted network's counter without
		// bound — it is excluded from the normalisation minimum below, so
		// nothing would ever pull it back down. A convicted network's
		// counter stays frozen until readmission resets it.
		return -1
	}
	m.recv[network]++
	// Normalise: subtract the minimum so the counters track differences
	// only. The minimum is taken over the non-faulty networks: a faulty
	// network's counter is frozen (neither observed nor replenished), so
	// letting it pin the minimum would stop normalisation for as long as
	// the fault lasts and the healthy counters would grow without bound.
	// Frozen counters instead ride the normalisation down to a floor of
	// zero, which preserves their differences against the leader until
	// readmission resets them anyway.
	minV := int64(-1)
	for i, v := range m.recv {
		if fault[i] && !Chaos.MonitorPinnedMin {
			continue
		}
		if minV < 0 || v < minV {
			minV = v
		}
	}
	if minV > 0 {
		for i := range m.recv {
			m.recv[i] -= minV
			if m.recv[i] < 0 {
				m.recv[i] = 0 // frozen faulty counter reached the floor
			}
		}
	}
	lag, lagDiff := -1, int64(0)
	maxV := m.max()
	for i, v := range m.recv {
		if fault[i] {
			continue
		}
		if d := maxV - v; d > lagDiff {
			lag, lagDiff = i, d
		}
	}
	return lag
}

func (m *countMonitor) max() int64 {
	maxV := m.recv[0]
	for _, v := range m.recv[1:] {
		if v > maxV {
			maxV = v
		}
	}
	return maxV
}

// diff returns how far network i lags behind the leader.
func (m *countMonitor) diff(i int) int {
	return int(m.max() - m.recv[i])
}

// replenish slowly raises lagging counters (requirement P5). Faulty
// networks are excluded: their counters stay frozen.
func (m *countMonitor) replenish(fault []bool) {
	maxV := m.max()
	for i := range m.recv {
		if !fault[i] && m.recv[i] < maxV {
			m.recv[i]++
		}
	}
}

// readmit resets network i's counter to the current maximum so a repaired
// network starts with zero lag.
func (m *countMonitor) readmit(i int) {
	m.recv[i] = m.max()
}

// monitorHeadroom returns the largest per-network counter across the token
// monitor and every per-sender message monitor. After normalisation the
// minimum non-faulty counter is zero, so this is exactly how far the
// monitors are from their "never grow unboundedly" contract; the decay
// probe exports it so external checkers can assert the bound.
func monitorHeadroom(tokMon *countMonitor, msgMon map[proto.NodeID]*countMonitor) int64 {
	h := tokMon.max()
	for _, mon := range msgMon {
		if v := mon.max(); v > h {
			h = v
		}
	}
	return h
}

var _ Replicator = (*passive)(nil)
