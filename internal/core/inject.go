package core

import (
	"math/rand"
	"sort"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// Fault-injection hooks for the torture harness's arbitrary-initial-state
// recovery mode (DESIGN.md §12). They scramble replicator-internal state
// the way a latent bug or bit-flip would; the monitors' decay, probation
// and readmission machinery is expected to absorb the damage on its own.
// Production drivers never call these.

// CorruptMonitors scrambles the replicator's per-network monitoring
// counters to arbitrary values around their conviction thresholds. This
// may falsely convict a healthy network; recovery is the designed path —
// probation followed by auto-readmission, which resets the counters.
func CorruptMonitors(r Replicator, rng *rand.Rand) bool {
	c, ok := r.(interface{ corruptMonitors(*rand.Rand) })
	if !ok {
		return false
	}
	c.corruptMonitors(rng)
	return true
}

// CorruptToken forges token-path state. The caller passes the current ring
// and the newest (seq, rotation) generation the SRP has seen; each style
// translates that into its own worst plausible token state: passive forges
// a stale held token (released by the hold timer, then discarded by the
// SRP's duplicate filter), active and active-passive poison their
// generation filter into the future (every genuine token is discarded as a
// straggler until the token-loss reformation installs a new ring, whose
// tokens compare fresh again because tokenKey.newer treats a ring change
// as newer).
func CorruptToken(r Replicator, ring proto.RingID, seq, rot uint32, rng *rand.Rand) bool {
	c, ok := r.(interface {
		corruptToken(proto.RingID, uint32, uint32, *rand.Rand) bool
	})
	if !ok {
		return false
	}
	return c.corruptToken(ring, seq, rot, rng)
}

func (m *countMonitor) scramble(rng *rand.Rand, ceil int64) {
	for i := range m.recv {
		m.recv[i] = rng.Int63n(ceil)
	}
}

// scrambleMsgMon scrambles every per-sender monitor in sorted sender
// order — map order would spend the rng draws differently on each run and
// break replay determinism.
func scrambleMsgMon(msgMon map[proto.NodeID]*countMonitor, rng *rand.Rand, ceil int64) {
	senders := make([]proto.NodeID, 0, len(msgMon))
	for id := range msgMon {
		senders = append(senders, id)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	for _, id := range senders {
		msgMon[id].scramble(rng, ceil)
	}
}

func (p *passive) corruptMonitors(rng *rand.Rand) {
	p.tokMon.scramble(rng, int64(p.cfg.TokenDiffThreshold)*2)
	scrambleMsgMon(p.msgMon, rng, int64(p.cfg.DiffThreshold)*2)
}

func (a *active) corruptMonitors(rng *rand.Rand) {
	// Prime the problem counters just below conviction: one more genuine
	// charge convicts, and the decay timer forgives one charge per window.
	for i := range a.problem {
		a.problem[i] = rng.Intn(a.cfg.ProblemThreshold)
	}
}

func (ap *activePassive) corruptMonitors(rng *rand.Rand) {
	ap.tokMon.scramble(rng, int64(ap.cfg.TokenDiffThreshold)*2)
	scrambleMsgMon(ap.msgMon, rng, int64(ap.cfg.DiffThreshold)*2)
}

func (p *passive) corruptToken(ring proto.RingID, seq, rot uint32, _ *rand.Rand) bool {
	tok := wire.Token{Ring: ring, Seq: seq, Rotation: rot}
	data, err := tok.AppendEncode(wire.GetFrame())
	if err != nil {
		wire.PutFrame(data)
		return false
	}
	// Mirror the displacement accounting of OnPacket: the forged token
	// evicts whatever was genuinely buffered.
	if p.held != nil {
		p.met.tokensDiscarded.Inc()
		p.acts.Probe(proto.ProbeTokenDiscarded, -1, int64(p.heldSeq), 0, 0)
		wire.PutFrame(p.held)
	}
	p.held = data
	p.heldSeq = seq
	if !p.holding {
		p.holding = true
		p.acts.SetTimer(proto.TimerID{Class: proto.TimerRRPToken}, p.cfg.TokenHold)
	}
	return true
}

func (a *active) corruptToken(ring proto.RingID, seq, rot uint32, rng *rand.Rand) bool {
	a.haveToken = true
	a.delivered = true
	a.lastKey = tokenKey{ring: ring, seq: seq + 32 + uint32(rng.Intn(96)), rotation: rot}
	return true
}

func (ap *activePassive) corruptToken(ring proto.RingID, seq, rot uint32, rng *rand.Rand) bool {
	ap.haveToken = true
	ap.delivered = true
	ap.lastKey = tokenKey{ring: ring, seq: seq + 32 + uint32(rng.Intn(96)), rotation: rot}
	return true
}
