package core

import (
	"strings"
	"testing"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/wire"
)

// recorder captures what a replicator delivers upward and emits downward.
type recorder struct {
	acts      proto.Actions
	delivered [][]byte
	missing   bool
}

func (r *recorder) callbacks() Callbacks {
	return Callbacks{
		Deliver: func(now proto.Time, data []byte) {
			r.delivered = append(r.delivered, data)
		},
		Missing: func(seq uint32) bool { return r.missing },
	}
}

// drainSends extracts SendPacket actions, returning per-network counts.
func (r *recorder) drainSends(t *testing.T, networks int) []int {
	t.Helper()
	counts := make([]int, networks)
	for _, a := range r.acts.Drain() {
		if sp, ok := a.(*proto.SendPacket); ok {
			counts[sp.Network]++
		}
	}
	return counts
}

// drainFaults extracts fault reports.
func (r *recorder) drainFaults() []proto.FaultReport {
	var out []proto.FaultReport
	for _, a := range r.acts.Drain() {
		if f, ok := a.(proto.Fault); ok {
			out = append(out, f.Report)
		}
	}
	return out
}

func tokenBytes(t *testing.T, seq, rot uint32) []byte {
	t.Helper()
	tok := &wire.Token{Ring: proto.RingID{Rep: 1, Epoch: 1}, Seq: seq, Rotation: rot}
	data, err := tok.Encode()
	if err != nil {
		t.Fatalf("encode token: %v", err)
	}
	return data
}

func dataBytes(t *testing.T, sender proto.NodeID, seq uint32) []byte {
	t.Helper()
	p := &wire.DataPacket{
		Ring: proto.RingID{Rep: 1, Epoch: 1}, Sender: sender, Seq: seq,
		Chunks: []wire.Chunk{{Flags: wire.ChunkFirst | wire.ChunkLast, Data: []byte("x")}},
	}
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("encode data: %v", err)
	}
	return data
}

func newActiveForTest(t *testing.T, rec *recorder, networks int) *active {
	t.Helper()
	cfg := DefaultConfig(networks, proto.ReplicationActive)
	rep, err := New(cfg, &rec.acts, rec.callbacks())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, ok := rep.(*active)
	if !ok {
		t.Fatalf("want *active, got %T", rep)
	}
	return a
}

func TestActiveSendsOnAllNetworks(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 3)
	a.SendMessage(dataBytes(t, 1, 1))
	if got := rec.drainSends(t, 3); got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("sends = %v, want one per network", got)
	}
	a.SendToken(2, tokenBytes(t, 1, 0))
	if got := rec.drainSends(t, 3); got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("token sends = %v", got)
	}
}

func TestActiveSkipsFaultyNetworkOnSend(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 3)
	a.fault[1] = true
	a.SendMessage(dataBytes(t, 1, 1))
	if got := rec.drainSends(t, 3); got[0] != 1 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("sends = %v, want to skip faulty network 1 (paper §3)", got)
	}
}

func TestActiveDeliversMessagesImmediately(t *testing.T) {
	// Requirement A1 is met upstream by the SRP sequence filter; the RRP
	// layer must deliver each copy at first reception for low latency.
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	msg := dataBytes(t, 1, 5)
	a.OnPacket(0, 0, msg)
	a.OnPacket(0, 1, msg)
	if len(rec.delivered) != 2 {
		t.Fatalf("delivered %d copies, want 2 (dedup is SRP's job)", len(rec.delivered))
	}
}

func TestActiveGatesTokenUntilAllCopies(t *testing.T) {
	// Requirements A2/A3: the token goes up only when received on every
	// non-faulty network, so all preceding messages have arrived and no
	// network lags behind.
	rec := &recorder{}
	a := newActiveForTest(t, rec, 3)
	tok := tokenBytes(t, 10, 0)
	a.OnPacket(0, 0, tok)
	if len(rec.delivered) != 0 {
		t.Fatal("token delivered after first copy")
	}
	a.OnPacket(0, 2, tok)
	if len(rec.delivered) != 0 {
		t.Fatal("token delivered after second of three copies")
	}
	a.OnPacket(0, 1, tok)
	if len(rec.delivered) != 1 {
		t.Fatalf("token not delivered after all copies: %d", len(rec.delivered))
	}
	if a.Stats().TokensGated != 1 {
		t.Fatalf("TokensGated = %d", a.Stats().TokensGated)
	}
}

func TestActiveIgnoresCopiesAfterDelivery(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	tok := tokenBytes(t, 10, 0)
	a.OnPacket(0, 0, tok)
	a.OnPacket(0, 1, tok)
	if len(rec.delivered) != 1 {
		t.Fatalf("want 1 delivery, got %d", len(rec.delivered))
	}
	a.OnPacket(0, 0, tok) // late duplicate
	if len(rec.delivered) != 1 {
		t.Fatal("late token copy delivered twice")
	}
	if a.Stats().TokensDiscarded == 0 {
		t.Fatal("late copy not counted as discarded")
	}
}

func TestActiveIgnoresOlderTokenGenerations(t *testing.T) {
	// Requirement A2: a straggler token from a slow network must never
	// trigger anything.
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	newTok := tokenBytes(t, 20, 0)
	oldTok := tokenBytes(t, 10, 0)
	a.OnPacket(0, 0, newTok)
	a.OnPacket(0, 0, oldTok)
	if len(rec.delivered) != 0 {
		t.Fatal("stale token caused delivery")
	}
	a.OnPacket(0, 1, newTok)
	if len(rec.delivered) != 1 {
		t.Fatal("gating broken after stale token")
	}
}

func TestActiveRotationCounterDistinguishesIdleTokens(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	t1 := tokenBytes(t, 5, 1)
	t2 := tokenBytes(t, 5, 2) // same seq, next rotation (idle ring)
	a.OnPacket(0, 0, t1)
	a.OnPacket(0, 1, t1)
	a.OnPacket(0, 0, t2)
	a.OnPacket(0, 1, t2)
	if len(rec.delivered) != 2 {
		t.Fatalf("idle-ring rotations delivered %d, want 2", len(rec.delivered))
	}
}

func TestActiveTokenTimerReleasesToken(t *testing.T) {
	// Requirement A4: progress even if a copy is lost.
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	a.OnPacket(0, 0, tokenBytes(t, 10, 0))
	a.OnTimer(a.cfg.TokenTimeout, proto.TimerID{Class: proto.TimerRRPToken})
	if len(rec.delivered) != 1 {
		t.Fatal("timer did not release the token")
	}
	if a.Stats().TokensTimedOut != 1 {
		t.Fatalf("TokensTimedOut = %d", a.Stats().TokensTimedOut)
	}
	// The copy arriving after the timeout is ignored (A4).
	a.OnPacket(0, 1, tokenBytes(t, 10, 0))
	if len(rec.delivered) != 1 {
		t.Fatal("late copy after timeout delivered again")
	}
}

func TestActiveProblemCounterDeclaresNetworkFaulty(t *testing.T) {
	// Requirement A5: a permanent network failure is eventually detected.
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	var seq uint32
	for i := 0; i < a.cfg.ProblemThreshold; i++ {
		seq += 10
		a.OnPacket(0, 0, tokenBytes(t, seq, 0)) // network 1 never delivers
		a.OnTimer(0, proto.TimerID{Class: proto.TimerRRPToken})
	}
	faults := rec.drainFaults()
	if len(faults) != 1 || faults[0].Network != 1 {
		t.Fatalf("faults = %v, want network 1 flagged", faults)
	}
	if got := a.Faulty(); !got[1] || got[0] {
		t.Fatalf("Faulty() = %v", got)
	}
	// After the fault, a token needs only the surviving network.
	rec.delivered = nil
	a.OnPacket(0, 0, tokenBytes(t, seq+10, 0))
	if len(rec.delivered) != 1 {
		t.Fatal("token still gated on faulty network")
	}
}

func TestActiveDecayForgivesSporadicLoss(t *testing.T) {
	// Requirement A6: sporadic token loss must not accumulate to a fault.
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	var seq uint32
	for round := 0; round < 3*a.cfg.ProblemThreshold; round++ {
		seq += 10
		a.OnPacket(0, 0, tokenBytes(t, seq, 0))
		a.OnTimer(0, proto.TimerID{Class: proto.TimerRRPToken}) // loss on net 1
		// Decay between losses (sporadic pattern).
		a.OnTimer(0, proto.TimerID{Class: proto.TimerRRPDecay})
	}
	if faults := rec.drainFaults(); len(faults) != 0 {
		t.Fatalf("sporadic loss raised faults: %v", faults)
	}
}

func TestActiveNeverDisablesLastNetwork(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	a.fault[0] = true
	a.markFaulty(0, 1, "test")
	if got := a.Faulty(); got[1] {
		t.Fatal("last usable network was disabled")
	}
	faults := rec.drainFaults()
	if len(faults) != 1 || !strings.Contains(faults[0].Reason, "last usable") {
		t.Fatalf("faults = %v", faults)
	}
}

func TestActiveTimerWithoutTokenIsNoop(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	a.OnTimer(0, proto.TimerID{Class: proto.TimerRRPToken})
	if len(rec.delivered) != 0 {
		t.Fatal("spurious timer delivered something")
	}
}

func TestActiveStartArmsDecayTimer(t *testing.T) {
	rec := &recorder{}
	a := newActiveForTest(t, rec, 2)
	a.Start(0)
	found := false
	for _, act := range rec.acts.Drain() {
		if st, ok := act.(proto.SetTimer); ok && st.ID.Class == proto.TimerRRPDecay {
			found = true
			if st.After != a.cfg.DecayInterval {
				t.Fatalf("decay interval %v", st.After)
			}
		}
	}
	if !found {
		t.Fatal("decay timer not armed at Start")
	}
}

func TestActiveFigure1Scenarios(t *testing.T) {
	// Figure 1 of the paper: the six interleavings of two tokens sent via
	// two networks. Whatever the arrival order, exactly two token
	// generations must be delivered, in generation order.
	type arrival struct {
		net int
		tok int // 1 or 2
	}
	scenarios := [][]arrival{
		{{0, 1}, {0, 2}, {1, 1}, {1, 2}}, // both arrive in order, x first
		{{0, 1}, {1, 1}, {0, 2}, {1, 2}}, // interleaved
		{{0, 1}, {1, 1}, {1, 2}, {0, 2}}, // second swaps networks
		{{1, 1}, {0, 1}, {0, 2}, {1, 2}}, // y's copy of 1 first
		{{1, 1}, {0, 1}, {1, 2}, {0, 2}},
		{{1, 1}, {1, 2}, {0, 1}, {0, 2}}, // network 1 runs far ahead
	}
	toks := map[int][]byte{1: tokenBytes(t, 10, 0), 2: tokenBytes(t, 20, 0)}
	// When a copy of token 2 arrives before token 1 has gathered all its
	// copies, the Fig. 2 algorithm supersedes token 1 (in a live ring
	// token 1 would already have been released by the token timer); in
	// the other interleavings both generations are delivered, in order.
	wantDeliveries := []int{1, 2, 2, 2, 2, 1}
	for i, sc := range scenarios {
		rec := &recorder{}
		a := newActiveForTest(t, rec, 2)
		for _, ar := range sc {
			a.OnPacket(0, ar.net, toks[ar.tok])
		}
		if len(rec.delivered) != wantDeliveries[i] {
			t.Fatalf("scenario %d: deliveries %d, want %d", i+1, len(rec.delivered), wantDeliveries[i])
		}
		// Token 2 (the newest generation) must always be delivered last.
		if last := rec.delivered[len(rec.delivered)-1]; &last[0] != &toks[2][0] {
			t.Fatalf("scenario %d: newest token not delivered last", i+1)
		}
		// In no scenario may a token generation be delivered twice
		// (requirement A2: no spurious retransmission triggers).
		seen := map[string]bool{}
		for _, d := range rec.delivered {
			s := string(d)
			if seen[s] {
				t.Fatalf("scenario %d: token delivered twice", i+1)
			}
			seen[s] = true
		}
	}
}
