package core

import (
	"strconv"

	"github.com/totem-rrp/totem/internal/metrics"
)

// coreCounters holds the RRP layer's resolved metric handles (names under
// "rrp."). The legacy Stats view is rebuilt from these on demand.
type coreCounters struct {
	tx, rx          []*metrics.Counter // per network
	tokensGated     *metrics.Counter
	tokensTimedOut  *metrics.Counter
	tokensDiscarded *metrics.Counter
	faultsRaised    *metrics.Counter
	faultsCleared   *metrics.Counter
	readmits        *metrics.Counter
	flapBackoffs    *metrics.Counter
	probesSent      *metrics.Counter
}

// newCoreCounters resolves the RRP metric names in reg.
func newCoreCounters(reg *metrics.Registry, networks int) coreCounters {
	c := coreCounters{
		tx:              make([]*metrics.Counter, networks),
		rx:              make([]*metrics.Counter, networks),
		tokensGated:     reg.Counter("rrp.tokens_gated"),
		tokensTimedOut:  reg.Counter("rrp.tokens_timed_out"),
		tokensDiscarded: reg.Counter("rrp.tokens_discarded"),
		faultsRaised:    reg.Counter("rrp.faults_raised"),
		faultsCleared:   reg.Counter("rrp.faults_cleared"),
		readmits:        reg.Counter("rrp.readmits"),
		flapBackoffs:    reg.Counter("rrp.flap_backoffs"),
		probesSent:      reg.Counter("rrp.probes_sent"),
	}
	for i := 0; i < networks; i++ {
		prefix := "rrp.net" + strconv.Itoa(i)
		c.tx[i] = reg.Counter(prefix + ".tx_packets")
		c.rx[i] = reg.Counter(prefix + ".rx_packets")
	}
	return c
}
