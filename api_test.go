package totem_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	totem "github.com/totem-rrp/totem"
)

func TestTuneHookAdjustsProtocol(t *testing.T) {
	hub := totem.NewMemHub(2)
	tr, _ := hub.Join(1)
	called := false
	n, err := totem.NewNode(totem.Config{
		ID:          1,
		Replication: totem.Active,
		Tune: func(o *totem.Options) {
			called = true
			o.SRP.MaxQueued = 7
			// Attempting to change the identity must be overridden.
			o.SRP.ID = 99
		},
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if !called {
		t.Fatal("Tune hook not invoked")
	}
	if n.ID() != 1 {
		t.Fatalf("ID = %v (identity must not be tunable)", n.ID())
	}
}

func TestTuneCanMakeConfigInvalid(t *testing.T) {
	hub := totem.NewMemHub(2)
	tr, _ := hub.Join(1)
	_, err := totem.NewNode(totem.Config{
		ID:          1,
		Replication: totem.Active,
		Tune: func(o *totem.Options) {
			o.SRP.WindowSize = -1
		},
	}, tr)
	if !errors.Is(err, totem.ErrConfig) {
		t.Fatalf("invalid tuned config accepted: %v", err)
	}
}

func TestSafeDeliveryThroughAPI(t *testing.T) {
	hub := totem.NewMemHub(2)
	var nodes []*totem.Node
	for id := totem.NodeID(1); id <= 3; id++ {
		tr, _ := hub.Join(id)
		n, err := totem.NewNode(totem.Config{
			ID:          id,
			Replication: totem.Active,
			Delivery:    totem.Safe,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}
	waitFullRing(t, nodes, 3, 15*time.Second)
	if err := nodes[0].Send([]byte("safely")); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		select {
		case d := <-n.Deliveries():
			if string(d.Payload) != "safely" {
				t.Fatalf("payload %q", d.Payload)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("node %v: safe delivery never happened", n.ID())
		}
	}
}

func TestActivePassiveThroughAPI(t *testing.T) {
	hub := totem.NewMemHub(3)
	var nodes []*totem.Node
	for id := totem.NodeID(1); id <= 3; id++ {
		tr, _ := hub.Join(id)
		n, err := totem.NewNode(totem.Config{
			ID:          id,
			Replication: totem.ActivePassive,
			K:           2,
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}
	waitFullRing(t, nodes, 3, 15*time.Second)
	if err := nodes[1].Send([]byte("k-of-n")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-nodes[2].Deliveries():
		if string(d.Payload) != "k-of-n" {
			t.Fatalf("payload %q", d.Payload)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no delivery under active-passive")
	}
}

func TestRingBeforeFormationIsZero(t *testing.T) {
	// A node with no transport traffic forms a singleton almost
	// instantly, so probe the pre-formation window via a fresh node and
	// accept either the zero ring or the singleton.
	hub := totem.NewMemHub(1)
	tr, _ := hub.Join(1)
	n, err := totem.NewNode(totem.Config{ID: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ring, members := n.Ring()
		if len(members) == 1 && ring.Rep == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("singleton never formed: ring=%v members=%v", ring, members)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConcurrentSendersPreserveTotalOrder(t *testing.T) {
	_, nodes := startRing(t, 3, 2, totem.Passive)
	const perSender = 50
	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				payload := []byte(fmt.Sprintf("%v:%d", n.ID(), i))
				for n.Send(payload) != nil {
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	total := perSender * len(nodes)
	collect := func(n *totem.Node) []string {
		var got []string
		deadline := time.After(20 * time.Second)
		for len(got) < total {
			select {
			case d := <-n.Deliveries():
				got = append(got, string(d.Payload))
			case <-deadline:
				return got
			}
		}
		return got
	}
	var seqs [][]string
	for _, n := range nodes {
		seqs = append(seqs, collect(n))
	}
	for i, s := range seqs {
		if len(s) != total {
			t.Fatalf("node %d delivered %d/%d", i+1, len(s), total)
		}
	}
	for i := 1; i < len(seqs); i++ {
		for j := range seqs[0] {
			if seqs[i][j] != seqs[0][j] {
				t.Fatalf("divergence at %d: %q vs %q", j, seqs[i][j], seqs[0][j])
			}
		}
	}
	// Per-sender FIFO: messages from one sender appear in submission order.
	for _, n := range nodes {
		last := -1
		for _, p := range seqs[0] {
			var sender totem.NodeID
			var i int
			if _, err := fmt.Sscanf(p, "n%d:%d", &sender, &i); err != nil {
				continue
			}
			if sender == n.ID() {
				if i != last+1 {
					t.Fatalf("sender %v FIFO violated: %d after %d", n.ID(), i, last)
				}
				last = i
			}
		}
	}
}

func TestBackpressureSurfacesAsError(t *testing.T) {
	hub := totem.NewMemHub(2)
	// Two-node ring; crash the peer by closing it so the queue backs up.
	tr1, _ := hub.Join(1)
	tr2, _ := hub.Join(2)
	n1, err := totem.NewNode(totem.Config{
		ID: 1, Replication: totem.Active,
		Tune: func(o *totem.Options) { o.SRP.MaxQueued = 4 },
	}, tr1)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := totem.NewNode(totem.Config{ID: 2, Replication: totem.Active}, tr2)
	if err != nil {
		t.Fatal(err)
	}
	waitFullRing(t, []*totem.Node{n1, n2}, 2, 15*time.Second)
	n2.Close()
	tr2.Close()
	// With the ring dead, at most MaxQueued submissions are accepted.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if err := n1.Send(make([]byte, 8)); errors.Is(err, totem.ErrBackpressure) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("backpressure never surfaced")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestReadmitNetworkRestoresReplication(t *testing.T) {
	hub, nodes := startRing(t, 3, 2, totem.Active)
	hub.KillNetwork(1)

	// Drive traffic until everyone convicts network 1.
	deadline := time.Now().Add(30 * time.Second)
	for {
		nodes[0].Send([]byte("x"))
		allFaulted := true
		for _, n := range nodes {
			f := n.NetworkFaults()
			if !f[1] {
				allFaulted = false
			}
		}
		if allFaulted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("network 1 never convicted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The administrator repairs the network and readmits it everywhere.
	hub.ReviveNetwork(1)
	for _, n := range nodes {
		n.ReadmitNetwork(1)
	}
	for _, n := range nodes {
		if f := n.NetworkFaults(); f[1] {
			t.Fatalf("node %v still faulty after readmit: %v", n.ID(), f)
		}
	}

	// Traffic must flow on network 1 again without an instant re-fault.
	before := nodes[1].Stats().RRP.TxPackets[1]
	for i := 0; i < 50; i++ {
		for nodes[1].Send([]byte("after-repair")) != nil {
			time.Sleep(time.Millisecond)
		}
	}
	deadline = time.Now().Add(20 * time.Second)
	for {
		if nodes[1].Stats().RRP.TxPackets[1] > before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no traffic on readmitted network")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if f := nodes[1].NetworkFaults(); f[1] {
		t.Fatal("readmitted network instantly re-faulted")
	}
}

func TestStatsSnapshot(t *testing.T) {
	_, nodes := startRing(t, 2, 2, totem.Passive)
	if err := nodes[0].Send([]byte("counted")); err != nil {
		t.Fatal(err)
	}
	<-nodes[1].Deliveries()
	s := nodes[1].Stats()
	if s.SRP.MsgsDelivered == 0 {
		t.Fatalf("SRP stats empty: %+v", s.SRP)
	}
	if len(s.RRP.RxPackets) != 2 {
		t.Fatalf("RRP per-network stats missing: %+v", s.RRP)
	}
	if s.RRP.RxPackets[0]+s.RRP.RxPackets[1] == 0 {
		t.Fatal("no received packets counted")
	}
}
