package totem_test

// Benchmarks regenerating the paper's evaluation (§8). One benchmark per
// figure; sub-benchmarks cover each (style, message length) point. The
// experiments run on the discrete-event simulator in virtual time, so the
// reported custom metrics (msgs/s, KB/s — virtual) are deterministic; the
// wall-clock ns/op merely reflects how fast the simulator executes.
//
//	go test -bench=Figure -benchmem
//
// regenerates every figure; cmd/totembench prints the same data as the
// aligned tables recorded in EXPERIMENTS.md.

import (
	"fmt"
	"testing"
	"time"

	totem "github.com/totem-rrp/totem"
	"github.com/totem-rrp/totem/internal/bench"
)

// benchLengths is the sweep used by the figure benchmarks; PaperLengths
// is the full grid (used by cmd/totembench), this subset keeps bench runs
// in minutes while covering both packing peaks and both extremes.
var benchLengths = []int{100, 700, 1000, 1400, 10000}

func runPoint(b *testing.B, e bench.Experiment) {
	b.Helper()
	var last bench.Result
	for i := 0; i < b.N; i++ {
		r, err := bench.Run(e)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.MsgsPerSec, "vmsgs/s")
	b.ReportMetric(last.KBytesPerSec, "vKB/s")
}

func benchmarkFigure(b *testing.B, nodes int) {
	for _, base := range bench.FigureStyles(nodes) {
		for _, l := range benchLengths {
			e := base
			e.MsgLen = l
			b.Run(fmt.Sprintf("%s/%dB", base.Name, l), func(b *testing.B) {
				runPoint(b, e)
			})
		}
	}
}

// BenchmarkFigure6SendRate4Nodes regenerates Figure 6 (msgs/sec, 4 nodes).
func BenchmarkFigure6SendRate4Nodes(b *testing.B) { benchmarkFigure(b, 4) }

// BenchmarkFigure7SendRate6Nodes regenerates Figure 7 (msgs/sec, 6 nodes).
func BenchmarkFigure7SendRate6Nodes(b *testing.B) { benchmarkFigure(b, 6) }

// BenchmarkFigure8Bandwidth4Nodes regenerates Figure 8 (KB/s, 4 nodes).
// Figures 6 and 8 plot the same experiment in different units; the vKB/s
// metric of these runs is the Figure 8 series.
func BenchmarkFigure8Bandwidth4Nodes(b *testing.B) { benchmarkFigure(b, 4) }

// BenchmarkFigure9Bandwidth6Nodes regenerates Figure 9 (KB/s, 6 nodes).
func BenchmarkFigure9Bandwidth6Nodes(b *testing.B) { benchmarkFigure(b, 6) }

// BenchmarkHeadlineUtilization regenerates the §2/§8 claim: >9000 1 KB
// msgs/sec ≈ 90% of a 100 Mbit/s Ethernet, with no replication.
func BenchmarkHeadlineUtilization(b *testing.B) {
	var last bench.Result
	for i := 0; i < b.N; i++ {
		r, err := bench.Headline(4)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.MsgsPerSec, "vmsgs/s")
	b.ReportMetric(100*last.Utilization, "util%")
}

// BenchmarkPackingSawtooth regenerates the §8 packing observation: the
// throughput peaks at 700 and 1400 byte messages.
func BenchmarkPackingSawtooth(b *testing.B) {
	for _, l := range []int{650, 700, 730, 1400, 1440} {
		b.Run(fmt.Sprintf("%dB", l), func(b *testing.B) {
			runPoint(b, bench.Experiment{
				Name:     "sawtooth",
				Nodes:    4,
				Networks: 1,
				Style:    totem.NoReplication,
				MsgLen:   l,
			})
		})
	}
}

// BenchmarkActivePassiveThroughput measures the §7 style the paper could
// not evaluate for lack of a third network (E8).
func BenchmarkActivePassiveThroughput(b *testing.B) {
	for _, l := range []int{700, 1000, 1400} {
		b.Run(fmt.Sprintf("K2N3/%dB", l), func(b *testing.B) {
			e := bench.Experiment{
				Name:     "active-passive",
				Nodes:    4,
				Networks: 3,
				K:        2,
				Style:    totem.ActivePassive,
				MsgLen:   l,
			}
			runPoint(b, e)
		})
	}
}

// --- Ablation benchmarks: the design choices DESIGN.md calls out ---

// BenchmarkAblationWindowSize sweeps the flow-control window.
func BenchmarkAblationWindowSize(b *testing.B) {
	for _, w := range []int{10, 20, 40, 80, 160, 320} {
		b.Run(fmt.Sprintf("window%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := bench.AblateWindowSize([]int{w})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(s.Results[0].MsgsPerSec, "vmsgs/s")
			}
		})
	}
}

// BenchmarkAblationMaxPerVisit sweeps the per-token-visit send cap.
func BenchmarkAblationMaxPerVisit(b *testing.B) {
	for _, v := range []int{1, 5, 10, 20, 40} {
		b.Run(fmt.Sprintf("visit%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := bench.AblateMaxPerVisit([]int{v})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(s.Results[0].MsgsPerSec, "vmsgs/s")
			}
		})
	}
}

// BenchmarkAblationRRPTokenTimeout sweeps the active-replication token
// gather timeout under 1% loss.
func BenchmarkAblationRRPTokenTimeout(b *testing.B) {
	for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := bench.AblateRRPTokenTimeout([]time.Duration{d})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(s.Results[0].MsgsPerSec, "vmsgs/s")
			}
		})
	}
}

// BenchmarkAblationK sweeps the active-passive copy count on 4 networks.
func BenchmarkAblationK(b *testing.B) {
	for _, k := range []int{2, 3} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := bench.AblateK([]int{k})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(s.Results[0].MsgsPerSec, "vmsgs/s")
			}
		})
	}
}

// BenchmarkAblationRingSize sweeps the member count.
func BenchmarkAblationRingSize(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("nodes%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := bench.AblateRingSize([]int{n})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(s.Results[0].MsgsPerSec, "vmsgs/s")
			}
		})
	}
}
