// Command totemload measures real-time (wall-clock) throughput and
// submit-to-delivery latency of a Totem ring running in this process over
// the in-memory transport — the live-runtime complement to the
// virtual-time simulator benches of cmd/totembench.
//
//	totemload -nodes 4 -networks 2 -style passive -len 1000 -duration 5s
//	totemload -style active -kill 1 -killafter 2s   # fail a network mid-run
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	totem "github.com/totem-rrp/totem"
	"github.com/totem-rrp/totem/internal/debughttp"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 4, "ring members")
		networks  = flag.Int("networks", 2, "redundant networks")
		style     = flag.String("style", "passive", "none | active | passive | active-passive")
		k         = flag.Int("k", 2, "copies for active-passive")
		msgLen    = flag.Int("len", 1000, "payload bytes")
		duration  = flag.Duration("duration", 5*time.Second, "measurement duration")
		kill      = flag.Int("kill", -1, "network to kill mid-run (-1: none)")
		killAt    = flag.Duration("killafter", 2*time.Second, "when to kill it")
		debugAddr = flag.String("debug-addr", "", "serve /healthz /stats /trace for node 1 on this address")
	)
	flag.Parse()
	if err := run(*nodes, *networks, *style, *k, *msgLen, *duration, *kill, *killAt, *debugAddr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parseStyle(s string) (totem.ReplicationStyle, error) {
	switch s {
	case "none":
		return totem.NoReplication, nil
	case "active":
		return totem.Active, nil
	case "passive":
		return totem.Passive, nil
	case "active-passive", "ap":
		return totem.ActivePassive, nil
	}
	return 0, fmt.Errorf("unknown style %q", s)
}

func run(nodes, networks int, styleName string, k, msgLen int, duration time.Duration, kill int, killAt time.Duration, debugAddr string) error {
	style, err := parseStyle(styleName)
	if err != nil {
		return err
	}
	if msgLen < 12 {
		msgLen = 12 // room for the timestamp header
	}
	hub := totem.NewMemHub(networks)
	ring := make([]*totem.Node, 0, nodes)
	for i := 1; i <= nodes; i++ {
		tr, err := hub.Join(totem.NodeID(i))
		if err != nil {
			return err
		}
		defer tr.Close()
		ncfg := totem.Config{
			ID:          totem.NodeID(i),
			Networks:    networks,
			Replication: style,
			K:           k,
		}
		if debugAddr != "" && i == 1 {
			ncfg.Tune = func(o *totem.Options) { o.TraceCapacity = 8192 }
		}
		n, err := totem.NewNode(ncfg, tr)
		if err != nil {
			return err
		}
		defer n.Close()
		ring = append(ring, n)
	}

	if debugAddr != "" {
		first := ring[0]
		ln, stopDebug, err := debughttp.Serve(debugAddr, debughttp.Config{
			Health: func() any {
				_, members := first.Ring()
				return map[string]any{
					"status":      "ok",
					"operational": first.Operational(),
					"members":     len(members),
					"faults":      first.NetworkFaults(),
				}
			},
			Metrics: first.Metrics(),
			Trace:   first.Trace(),
		})
		if err != nil {
			return fmt.Errorf("debug endpoint: %w", err)
		}
		defer stopDebug()
		fmt.Printf("debug endpoints on http://%s/{healthz,stats,trace}\n", ln.Addr())
	}

	// Collect fault and readmission events from the probe node so the exit
	// summary can report what the monitors saw during the run.
	var (
		evMu     sync.Mutex
		faultLog []string
	)
	logEvent := func(format string, args ...any) {
		evMu.Lock()
		faultLog = append(faultLog, fmt.Sprintf(format, args...))
		evMu.Unlock()
	}
	probeNode := ring[len(ring)-1]
	go func() {
		for f := range probeNode.Faults() {
			logEvent("fault: network %d: %s", f.Network, f.Reason)
		}
	}()
	go func() {
		for c := range probeNode.FaultsCleared() {
			logEvent("readmitted: network %d after probation %d", c.Network, c.Probation)
		}
	}()
	for {
		ready := true
		for _, n := range ring {
			if _, members := n.Ring(); len(members) != nodes || !n.Operational() {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("ring up: %d nodes, %d networks, %v replication, %dB payloads\n",
		nodes, networks, style, msgLen)

	// Consumer on the last node records latency from the timestamp the
	// producer embeds in each payload.
	type sample struct{ lat time.Duration }
	samples := make(chan sample, 65536)
	done := make(chan struct{})
	var delivered uint64
	var bytes uint64
	go func() {
		defer close(done)
		sink := ring[len(ring)-1].Deliveries()
		for d := range sink {
			delivered++
			bytes += uint64(len(d.Payload))
			sent := time.Duration(binary.BigEndian.Uint64(d.Payload[4:]))
			select {
			case samples <- sample{lat: time.Duration(time.Now().UnixNano()) - sent}:
			default:
			}
		}
	}()

	// Saturating producers on every node.
	stop := make(chan struct{})
	for _, n := range ring {
		go func() {
			payload := make([]byte, msgLen)
			for {
				select {
				case <-stop:
					return
				default:
				}
				binary.BigEndian.PutUint64(payload[4:], uint64(time.Now().UnixNano()))
				if err := n.Send(append([]byte(nil), payload...)); err != nil {
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
	}

	if kill >= 0 && kill < networks {
		time.AfterFunc(killAt, func() {
			fmt.Printf("-- killing network %d --\n", kill)
			hub.KillNetwork(kill)
		})
	}

	start := time.Now()
	time.Sleep(duration)
	close(stop)
	elapsed := time.Since(start)
	total, totalBytes := delivered, bytes

	// Drain the latency samples.
	var lats []time.Duration
	for {
		select {
		case s := <-samples:
			lats = append(lats, s.lat)
			continue
		default:
		}
		break
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}

	fmt.Printf("delivered %d msgs in %v: %.0f msgs/sec, %.0f KB/s (wall clock)\n",
		total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), float64(totalBytes)/elapsed.Seconds()/1024)
	fmt.Printf("latency p50=%v p90=%v p99=%v max=%v (%d samples)\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond), len(lats))
	fmt.Printf("network faults at probe node: %v\n", probeNode.NetworkFaults())
	s := probeNode.Stats()
	fmt.Printf("rrp tx per network: %v; rx per network: %v\n", s.RRP.TxPackets, s.RRP.RxPackets)
	fmt.Printf("rrp tokens gated %d, timed out %d, discarded %d; srp retransmissions %d\n",
		s.RRP.TokensGated, s.RRP.TokensTimedOut, s.RRP.TokensDiscarded, s.SRP.Retransmissions)
	fmt.Printf("rrp faults raised %d, cleared %d, readmits %d, flap backoffs %d, probes sent %d\n",
		s.RRP.FaultsRaised, s.RRP.FaultsCleared, s.RRP.Readmits, s.RRP.FlapBackoffs, s.RRP.ProbesSent)
	evMu.Lock()
	events := faultLog
	evMu.Unlock()
	if len(events) == 0 {
		fmt.Println("fault/readmission events: none")
	} else {
		fmt.Printf("fault/readmission events (%d):\n", len(events))
		for _, e := range events {
			fmt.Printf("  %s\n", e)
		}
	}
	return nil
}
