// Command totemtorture runs the deterministic torture harness: seeded
// adversarial fault programs executed on the virtual-time simulator with
// every run checked against the global protocol invariants (agreed
// delivery order, no duplicates, self-delivery, convergence after heal,
// token accounting, monitor boundedness — see DESIGN.md §10).
//
// Batch mode scans seed ranges across replication styles; on the first
// violation it greedily shrinks the fault program to a minimal repro and
// (optionally) writes it to a JSON file that -replay re-executes byte for
// byte:
//
//	totemtorture -seeds 200                 # CI smoke: seeds 1..200, all styles
//	totemtorture -seed 7 -style passive -v  # one run, verbose
//	totemtorture -seeds 50 -style active -shrink -repro fail.json
//	totemtorture -replay fail.json          # re-run a saved repro
//	totemtorture -seed 3 -style passive -chaos held-token-leak -expect token-accounting
//
// The -chaos flag re-introduces a known-fixed bug (mutation testing); with
// -expect the exit status reports whether the checker caught it.
//
// Live mode runs the same programs against real totem.Nodes on the
// goroutine runtime — over the in-process transport or loopback UDP
// sockets — through a netem-style impairment layer, checked by the same
// invariants (DESIGN.md §11):
//
//	totemtorture -live -seeds 50 -transport udp -workers 4
//	totemtorture -live -seeds 20 -budget 90s     # stop dispatching at 90s
//	totemtorture -diff -seeds 2                  # sim-vs-live differential
//
// Multi-ring mode tortures an M-shard cluster: on the simulator each
// seed expands to M independent derived-seed programs (sharded rings
// never exchange a frame); with -live it boots real M-ring Nodes under
// keyed load and blacks out individual shards, checking per-shard
// ordering, non-stall of healthy shards and post-heal recovery:
//
//	totemtorture -shards 4 -seeds 25             # sim: 25 seeds x 4 rings
//	totemtorture -shards 4 -live -seeds 3        # live multi-ring torture
//	totemtorture -shards 3 -live -seeds 2 -cross-order
//
// Exit codes: 0 clean (or the expected violation fired), 1 violation (or
// an expected violation did not fire), 2 usage or execution error.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/totem-rrp/totem/internal/core"
	"github.com/totem-rrp/totem/internal/live"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/torture"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 0, "batch mode: run seeds seed-base..seed-base+N-1 for each selected style")
		seedBase = flag.Int64("seed-base", 1, "first seed of a -seeds batch")
		seed     = flag.Int64("seed", 0, "single mode: run exactly this seed")
		style    = flag.String("style", "all", "active | passive | active-passive | all | gray")
		corrupt  = flag.String("corrupt", "", "gray mode: corrupt one node's state mid-run (monitors | held-token | ring-seq | aru | rand)")
		shrink   = flag.Bool("shrink", false, "on violation, shrink the program to a minimal repro")
		repro    = flag.String("repro", "", "write the (shrunk) failing program to this JSON file")
		replay   = flag.String("replay", "", "re-execute a saved repro file instead of generating programs")
		chaos    = flag.String("chaos", "", "re-introduce a fixed bug: held-token-leak | pinned-min | frozen-token-filter | impatient-gate")
		expect   = flag.String("expect", "", "require this invariant to fire (mutation testing)")
		traceN   = flag.Int("trace", 0, "print the last N trace events of a failing (or -v single) run")
		verbose  = flag.Bool("v", false, "per-run progress output")

		shards     = flag.Int("shards", 0, "multi-ring mode: with M>1 the simulator runs M derived-seed programs per seed (one per independent ring); -live runs the live multi-ring shard torture instead")
		crossOrder = flag.Bool("cross-order", false, "shards live mode: also run the deterministic cross-shard merge and check merged agreement")

		liveMode  = flag.Bool("live", false, "run programs on the live goroutine/socket harness instead of the simulator")
		diffMode  = flag.Bool("diff", false, "differential mode: replay mild programs on both sim and live and compare")
		transport = flag.String("transport", "mem", "live/diff transport: mem | udp")
		wirepath  = flag.String("wirepath", "", "live/diff UDP wire path: auto | portable | batch (empty = auto)")
		timescale = flag.Float64("timescale", 0.3, "live/diff: wall seconds per virtual second")
		skew      = flag.Float64("skew", 0, "live: per-node clock skew fraction (0.1 = timers off by up to ±10%)")
		workers   = flag.Int("workers", 1, "live mode: concurrent runs")
		budget    = flag.Duration("budget", 0, "live mode: stop dispatching new seeds after this wall-clock budget")
	)
	flag.Parse()

	code, err := run(config{
		seeds: *seeds, seedBase: *seedBase, seed: *seed, style: *style,
		corrupt: *corrupt,
		shrink:  *shrink, repro: *repro, replay: *replay,
		chaos: *chaos, expect: *expect, traceN: *traceN, verbose: *verbose,
		shards: *shards, crossOrder: *crossOrder,
		live: *liveMode, diff: *diffMode, transport: *transport, wirepath: *wirepath,
		timescale: *timescale, skew: *skew, workers: *workers, budget: *budget,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "totemtorture:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

type config struct {
	seeds    int
	seedBase int64
	seed     int64
	style    string
	corrupt  string
	shrink   bool
	repro    string
	replay   string
	chaos    string
	expect   string
	traceN   int
	verbose  bool

	shards     int
	crossOrder bool

	live      bool
	diff      bool
	transport string
	wirepath  string
	timescale float64
	skew      float64
	workers   int
	budget    time.Duration
}

func run(cfg config) (int, error) {
	opt := torture.Options{}
	switch cfg.chaos {
	case "":
	case "held-token-leak":
		opt.Chaos = core.ChaosFlags{HeldTokenLeak: true}
	case "pinned-min":
		opt.Chaos = core.ChaosFlags{MonitorPinnedMin: true}
	case "frozen-token-filter":
		opt.Chaos = core.ChaosFlags{FrozenTokenFilter: true}
	case "impatient-gate":
		opt.Chaos = core.ChaosFlags{ImpatientGate: true}
	default:
		return 2, fmt.Errorf("unknown -chaos %q", cfg.chaos)
	}

	if cfg.corrupt != "" {
		if cfg.style != "gray" {
			return 2, fmt.Errorf("-corrupt requires -style gray")
		}
		if cfg.corrupt != "rand" {
			ok := false
			for _, s := range torture.CorruptSubs {
				if cfg.corrupt == s {
					ok = true
				}
			}
			if !ok {
				return 2, fmt.Errorf("unknown -corrupt %q (want rand or one of %v)", cfg.corrupt, torture.CorruptSubs)
			}
		}
	}

	if (cfg.live || cfg.diff) && cfg.chaos != "" {
		return 2, fmt.Errorf("-chaos is simulator-only (the flags are process-global; live workers run concurrently)")
	}
	if cfg.live && cfg.shrink {
		return 2, fmt.Errorf("-shrink is simulator-only; replay the seed without -live to shrink it")
	}

	if cfg.replay != "" {
		return replayFile(cfg, opt)
	}

	var styles []proto.ReplicationStyle
	if cfg.style == "gray" {
		if cfg.diff {
			return 2, fmt.Errorf("-style gray is not supported in -diff mode")
		}
		// Gray programs draw their replication style from the seed; one
		// placeholder entry keeps the batch loops shared.
		styles = []proto.ReplicationStyle{proto.ReplicationActive}
	} else {
		var err error
		styles, err = selectStyles(cfg.style)
		if err != nil {
			return 2, err
		}
	}

	base, n := cfg.seedBase, cfg.seeds
	if cfg.seed != 0 {
		base, n = cfg.seed, 1
	}
	if n <= 0 {
		return 2, fmt.Errorf("need -seeds N, -seed S or -replay FILE (see -help)")
	}
	if cfg.shards > 1 {
		if cfg.diff {
			return 2, fmt.Errorf("-shards is not supported in -diff mode")
		}
		if cfg.style == "gray" {
			return 2, fmt.Errorf("-shards is not supported with -style gray")
		}
		if cfg.live {
			return shardLiveBatch(cfg, base, n)
		}
		return shardSimBatch(cfg, opt, styles, base, n)
	}
	switch {
	case cfg.diff:
		return diffBatch(cfg, styles, base, n)
	case cfg.live:
		return liveBatch(cfg, styles, base, n)
	}
	return batch(cfg, opt, styles, base, n)
}

// shardSeed derives an independent per-ring seed: M sharded rings never
// exchange a frame, so the sim equivalent of one M-shard cluster is M
// unrelated programs — distinct seeds keep their fault schedules from
// being artificially synchronised.
func shardSeed(seed int64, shard int) int64 {
	return seed*1000003 + int64(shard)*7919
}

// shardSimBatch models an M-ring cluster on the simulator: each seed
// expands to M derived-seed single-ring programs, all of which must run
// clean for the seed to pass.
func shardSimBatch(cfg config, opt torture.Options, styles []proto.ReplicationStyle, base int64, n int) (int, error) {
	start := time.Now()
	runs := 0
	for _, style := range styles {
		for s := base; s < base+int64(n); s++ {
			for sh := 0; sh < cfg.shards; sh++ {
				p := cfg.generate(shardSeed(s, sh), style)
				res, err := torture.Execute(p, opt)
				if err != nil {
					return 2, err
				}
				runs++
				if cfg.verbose {
					fmt.Printf("seed %d shard %d %-14s delivered %5d end %8s  %s\n",
						s, sh, p.Style, res.Delivered, res.End.Truncate(time.Millisecond), outcome(res))
				}
				if res.Violation != nil {
					fmt.Printf("(shard %d of an M=%d sim batch, derived seed %d)\n", sh, cfg.shards, p.Seed)
					return report(cfg, opt, p, res)
				}
			}
		}
	}
	fmt.Printf("ok: %d runs (%d seeds x %d shards), %d styles, 0 violations (%.1fs)\n",
		runs, n, cfg.shards, len(styles), time.Since(start).Seconds())
	return 0, nil
}

// shardLiveBatch sweeps seeds through the live multi-ring torture: real
// Nodes with M rings under keyed load and per-shard blackouts, checked
// for per-shard ordering, non-stall and post-heal recovery.
func shardLiveBatch(cfg config, base int64, n int) (int, error) {
	start := time.Now()
	style := cfg.style
	if style == "all" {
		style = "" // harness default
	}
	runs := 0
	for s := base; s < base+int64(n); s++ {
		res, err := live.ShardTorture(live.ShardTortureOptions{
			Shards:     cfg.shards,
			Style:      style,
			Transport:  cfg.transport,
			WirePath:   cfg.wirepath,
			Seed:       s,
			CrossOrder: cfg.crossOrder,
		})
		if err != nil {
			return 2, err
		}
		runs++
		if cfg.verbose {
			fmt.Printf("shard-live seed %d delivered %6d windows %d  %s\n",
				s, res.Delivered, res.Windows, shardOutcome(res))
		}
		if !res.Ok() {
			fmt.Printf("SHARD LIVE VIOLATION seed %d (shards %d, transport %s):\n",
				s, cfg.shards, cfg.transport)
			for _, v := range res.Violations {
				fmt.Println("  " + v)
			}
			return 1, nil
		}
	}
	fmt.Printf("shard-live ok: %d runs on %s, %d shards, 0 violations (%.1fs)\n",
		runs, cfg.transport, cfg.shards, time.Since(start).Seconds())
	return 0, nil
}

func shardOutcome(res *live.ShardTortureResult) string {
	if res.Ok() {
		return "ok"
	}
	return fmt.Sprintf("%d violations", len(res.Violations))
}

// generate builds the program for one (seed, style) job: gray mode draws
// everything (including the replication style) from the seed.
func (cfg config) generate(seed int64, style proto.ReplicationStyle) torture.Program {
	if cfg.style == "gray" {
		return torture.GenerateGray(seed, cfg.corrupt)
	}
	return torture.Generate(seed, style)
}

// liveOptions maps the CLI flags onto the harness options.
func liveOptions(cfg config) live.Options {
	return live.Options{
		Transport: cfg.transport,
		WirePath:  cfg.wirepath,
		TimeScale: cfg.timescale,
		ClockSkew: cfg.skew,
	}
}

// liveAdapt rewrites a generated program for wall-clock execution: the
// simulator's 4 ms load interval would compress below Go timer
// granularity at the configured timescale, so the interval is floored to
// 5 ms of wall time per message.
func liveAdapt(p torture.Program, scale float64) torture.Program {
	if floor := time.Duration(float64(5*time.Millisecond) / scale); p.LoadInterval < floor {
		p.LoadInterval = floor
	}
	return p
}

// liveBatch sweeps seeds on the live harness with a worker pool, bounded
// by the wall-clock budget: once the budget is spent no new seeds are
// dispatched (in-flight runs finish and are still checked).
func liveBatch(cfg config, styles []proto.ReplicationStyle, base int64, n int) (int, error) {
	start := time.Now()
	type job struct {
		style proto.ReplicationStyle
		seed  int64
	}
	var jobs []job
	for s := base; s < base+int64(n); s++ {
		for _, style := range styles {
			jobs = append(jobs, job{style, s})
		}
	}
	workers := cfg.workers
	if workers < 1 {
		workers = 1
	}
	var (
		mu       sync.Mutex
		runs     int
		skipped  int
		firstBad *torture.Result
	)
	jobc := make(chan job)
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := range jobc {
				p := liveAdapt(cfg.generate(j.seed, j.style), cfg.timescale)
				res, err := live.Execute(p, liveOptions(cfg))
				mu.Lock()
				if err != nil {
					if firstBad == nil {
						firstBad = &torture.Result{Program: p, Violation: &torture.Violation{
							Invariant: "harness", Detail: err.Error(),
						}}
					}
					mu.Unlock()
					continue
				}
				runs++
				if cfg.verbose {
					fmt.Printf("live seed %d %-14s delivered %5d end %8s  %s\n",
						j.seed, j.style, res.Delivered, res.End.Truncate(time.Millisecond), outcome(res))
				}
				if res.Violation != nil && firstBad == nil {
					firstBad = res
				}
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		mu.Lock()
		bad := firstBad != nil
		mu.Unlock()
		if bad || (cfg.budget > 0 && time.Since(start) > cfg.budget) {
			skipped++
			continue
		}
		jobc <- j
	}
	close(jobc)
	for w := 0; w < workers; w++ {
		<-done
	}
	if firstBad != nil {
		fmt.Printf("LIVE VIOLATION seed %d style %s (transport %s): %v\n",
			firstBad.Program.Seed, firstBad.Program.Style, cfg.transport, firstBad.Violation)
		if cfg.traceN > 0 {
			printTail(firstBad, cfg.traceN)
		}
		if cfg.repro != "" {
			r := torture.Repro{
				Note:      fmt.Sprintf("totemtorture -live -transport %s seed %d style %s", cfg.transport, firstBad.Program.Seed, firstBad.Program.Style),
				Expect:    firstBad.Violation.Invariant,
				Program:   firstBad.Program,
				Violation: firstBad.Violation,
			}
			if err := torture.SaveRepro(cfg.repro, r); err != nil {
				return 2, err
			}
			fmt.Printf("repro written to %s\n", cfg.repro)
		}
		return 1, nil
	}
	note := ""
	if skipped > 0 {
		note = fmt.Sprintf(", %d seeds skipped by -budget", skipped)
	}
	fmt.Printf("live ok: %d runs on %s, %d styles, 0 violations (%.1fs%s)\n",
		runs, cfg.transport, len(styles), time.Since(start).Seconds(), note)
	return 0, nil
}

// diffBatch replays one mild program per (style, seed) on both backends
// and fails on any disagreement.
func diffBatch(cfg config, styles []proto.ReplicationStyle, base int64, n int) (int, error) {
	start := time.Now()
	runs := 0
	for _, style := range styles {
		for s := base; s < base+int64(n); s++ {
			p := live.DiffProgram(s, style)
			var rep *live.DiffReport
			var err error
			// The sim side is deterministic; only the live side is subject
			// to wall-clock scheduling noise. Two retries absorb a noisy CI
			// neighbour stalling a node past a protocol timeout, while a
			// genuine sim-vs-live divergence reproduces on every attempt.
			for attempt := 0; attempt < 3; attempt++ {
				rep, err = live.Differential(p, liveOptions(cfg))
				if err != nil {
					return 2, err
				}
				if rep.OK() {
					break
				}
				fmt.Printf("diff seed %d style %s: mismatch on attempt %d, retrying\n", s, style, attempt+1)
			}
			runs++
			if cfg.verbose {
				fmt.Printf("diff seed %d %-14s sim %5d live %5d deliveries  %s\n",
					s, style, rep.Sim.Delivered, rep.Live.Delivered, diffOutcome(rep))
			}
			if !rep.OK() {
				fmt.Printf("DIFF MISMATCH seed %d style %s (transport %s):\n", s, style, cfg.transport)
				for _, m := range rep.Mismatches {
					fmt.Println("  " + m)
				}
				return 1, nil
			}
		}
	}
	fmt.Printf("diff ok: %d sim-vs-live replays on %s agree (%.1fs)\n",
		runs, cfg.transport, time.Since(start).Seconds())
	return 0, nil
}

func diffOutcome(rep *live.DiffReport) string {
	if rep.OK() {
		return "agree"
	}
	return fmt.Sprintf("%d mismatches", len(rep.Mismatches))
}

func selectStyles(name string) ([]proto.ReplicationStyle, error) {
	if name == "all" {
		return []proto.ReplicationStyle{
			proto.ReplicationActive,
			proto.ReplicationPassive,
			proto.ReplicationActivePassive,
		}, nil
	}
	s, err := torture.StyleByName(name)
	if err != nil {
		return nil, err
	}
	return []proto.ReplicationStyle{s}, nil
}

// batch executes n seeds for every style and handles the first violation:
// report, optionally shrink, optionally save, exit 1. With -expect the
// polarity flips — a batch where no run fails the expected invariant is
// the failure.
func batch(cfg config, opt torture.Options, styles []proto.ReplicationStyle, base int64, n int) (int, error) {
	start := time.Now()
	runs := 0
	for _, style := range styles {
		for s := base; s < base+int64(n); s++ {
			p := cfg.generate(s, style)
			res, err := torture.Execute(p, opt)
			if err != nil {
				return 2, err
			}
			runs++
			if cfg.verbose {
				fmt.Printf("seed %d %-14s delivered %5d end %8s  %s\n",
					s, p.Style, res.Delivered, res.End.Truncate(time.Millisecond), outcome(res))
			}
			if res.Violation != nil {
				if cfg.expect != "" && res.Violation.Invariant == cfg.expect {
					fmt.Printf("expected violation fired: %v\n", res.Violation)
					return 0, nil
				}
				return report(cfg, opt, p, res)
			}
			if cfg.traceN > 0 && cfg.seed != 0 {
				printTail(res, cfg.traceN)
			}
		}
	}
	if cfg.expect != "" {
		fmt.Printf("FAIL: expected invariant %q never fired in %d runs\n", cfg.expect, runs)
		return 1, nil
	}
	fmt.Printf("ok: %d runs, %d styles, 0 violations (%.1fs)\n",
		runs, len(styles), time.Since(start).Seconds())
	return 0, nil
}

func outcome(res *torture.Result) string {
	if res.Violation != nil {
		return res.Violation.String()
	}
	return "ok"
}

// report prints a violation, optionally shrinks it to a minimal repro and
// saves it, and returns exit code 1.
func report(cfg config, opt torture.Options, p torture.Program, res *torture.Result) (int, error) {
	fmt.Printf("VIOLATION seed %d style %s: %v\n", p.Seed, p.Style, res.Violation)
	final, finalRes := p, res
	if cfg.shrink {
		sp, sr, err := torture.Shrink(p, opt, 0)
		if err != nil {
			return 2, err
		}
		if sr != nil && sr.Violation != nil {
			final, finalRes = sp, sr
			fmt.Printf("shrunk: %d ops -> %d ops, still fails %s\n",
				len(p.Ops), len(sp.Ops), sr.Violation.Invariant)
		}
	}
	if cfg.traceN > 0 {
		printTail(finalRes, cfg.traceN)
	}
	if cfg.repro != "" {
		r := torture.Repro{
			Note:      fmt.Sprintf("totemtorture seed %d style %s", p.Seed, p.Style),
			Chaos:     opt.Chaos,
			Expect:    finalRes.Violation.Invariant,
			Program:   final,
			Violation: finalRes.Violation,
		}
		if err := torture.SaveRepro(cfg.repro, r); err != nil {
			return 2, err
		}
		fmt.Printf("repro written to %s\n", cfg.repro)
	}
	return 1, nil
}

// replayFile re-executes a saved repro. The outcome is judged against the
// repro's Expect field: an empty Expect means the program must run clean,
// otherwise the recorded invariant must fire again.
func replayFile(cfg config, opt torture.Options) (int, error) {
	r, err := torture.LoadRepro(cfg.replay)
	if err != nil {
		return 2, err
	}
	if cfg.chaos == "" {
		opt.Chaos = r.Chaos
	}
	expect := r.Expect
	if cfg.expect != "" {
		expect = cfg.expect
	}
	var res *torture.Result
	if cfg.live {
		res, err = live.Execute(r.Program, liveOptions(cfg))
	} else {
		res, err = torture.Execute(r.Program, opt)
	}
	if err != nil {
		return 2, err
	}
	fmt.Printf("replay %s: %s\n", cfg.replay, outcome(res))
	if cfg.traceN > 0 {
		printTail(res, cfg.traceN)
	}
	switch {
	case expect == "" && res.Violation == nil:
		return 0, nil
	case expect != "" && res.Violation != nil && res.Violation.Invariant == expect:
		return 0, nil
	case expect != "":
		fmt.Printf("FAIL: expected invariant %q, got %s\n", expect, outcome(res))
		return 1, nil
	default:
		return 1, nil
	}
}

func printTail(res *torture.Result, n int) {
	lines := res.TraceTail
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	for _, l := range lines {
		fmt.Println("  " + l)
	}
}
