// Command totemtorture runs the deterministic torture harness: seeded
// adversarial fault programs executed on the virtual-time simulator with
// every run checked against the global protocol invariants (agreed
// delivery order, no duplicates, self-delivery, convergence after heal,
// token accounting, monitor boundedness — see DESIGN.md §10).
//
// Batch mode scans seed ranges across replication styles; on the first
// violation it greedily shrinks the fault program to a minimal repro and
// (optionally) writes it to a JSON file that -replay re-executes byte for
// byte:
//
//	totemtorture -seeds 200                 # CI smoke: seeds 1..200, all styles
//	totemtorture -seed 7 -style passive -v  # one run, verbose
//	totemtorture -seeds 50 -style active -shrink -repro fail.json
//	totemtorture -replay fail.json          # re-run a saved repro
//	totemtorture -seed 3 -style passive -chaos held-token-leak -expect token-accounting
//
// The -chaos flag re-introduces a known-fixed bug (mutation testing); with
// -expect the exit status reports whether the checker caught it.
//
// Exit codes: 0 clean (or the expected violation fired), 1 violation (or
// an expected violation did not fire), 2 usage or execution error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/totem-rrp/totem/internal/core"
	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/torture"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 0, "batch mode: run seeds seed-base..seed-base+N-1 for each selected style")
		seedBase = flag.Int64("seed-base", 1, "first seed of a -seeds batch")
		seed     = flag.Int64("seed", 0, "single mode: run exactly this seed")
		style    = flag.String("style", "all", "active | passive | active-passive | all")
		shrink   = flag.Bool("shrink", false, "on violation, shrink the program to a minimal repro")
		repro    = flag.String("repro", "", "write the (shrunk) failing program to this JSON file")
		replay   = flag.String("replay", "", "re-execute a saved repro file instead of generating programs")
		chaos    = flag.String("chaos", "", "re-introduce a fixed bug: held-token-leak | pinned-min")
		expect   = flag.String("expect", "", "require this invariant to fire (mutation testing)")
		traceN   = flag.Int("trace", 0, "print the last N trace events of a failing (or -v single) run")
		verbose  = flag.Bool("v", false, "per-run progress output")
	)
	flag.Parse()

	code, err := run(config{
		seeds: *seeds, seedBase: *seedBase, seed: *seed, style: *style,
		shrink: *shrink, repro: *repro, replay: *replay,
		chaos: *chaos, expect: *expect, traceN: *traceN, verbose: *verbose,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "totemtorture:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

type config struct {
	seeds    int
	seedBase int64
	seed     int64
	style    string
	shrink   bool
	repro    string
	replay   string
	chaos    string
	expect   string
	traceN   int
	verbose  bool
}

func run(cfg config) (int, error) {
	opt := torture.Options{}
	switch cfg.chaos {
	case "":
	case "held-token-leak":
		opt.Chaos = core.ChaosFlags{HeldTokenLeak: true}
	case "pinned-min":
		opt.Chaos = core.ChaosFlags{MonitorPinnedMin: true}
	default:
		return 2, fmt.Errorf("unknown -chaos %q", cfg.chaos)
	}

	if cfg.replay != "" {
		return replayFile(cfg, opt)
	}

	styles, err := selectStyles(cfg.style)
	if err != nil {
		return 2, err
	}

	if cfg.seed != 0 {
		return batch(cfg, opt, styles, cfg.seed, 1)
	}
	if cfg.seeds <= 0 {
		return 2, fmt.Errorf("need -seeds N, -seed S or -replay FILE (see -help)")
	}
	return batch(cfg, opt, styles, cfg.seedBase, cfg.seeds)
}

func selectStyles(name string) ([]proto.ReplicationStyle, error) {
	if name == "all" {
		return []proto.ReplicationStyle{
			proto.ReplicationActive,
			proto.ReplicationPassive,
			proto.ReplicationActivePassive,
		}, nil
	}
	s, err := torture.StyleByName(name)
	if err != nil {
		return nil, err
	}
	return []proto.ReplicationStyle{s}, nil
}

// batch executes n seeds for every style and handles the first violation:
// report, optionally shrink, optionally save, exit 1. With -expect the
// polarity flips — a batch where no run fails the expected invariant is
// the failure.
func batch(cfg config, opt torture.Options, styles []proto.ReplicationStyle, base int64, n int) (int, error) {
	start := time.Now()
	runs := 0
	for _, style := range styles {
		for s := base; s < base+int64(n); s++ {
			p := torture.Generate(s, style)
			res, err := torture.Execute(p, opt)
			if err != nil {
				return 2, err
			}
			runs++
			if cfg.verbose {
				fmt.Printf("seed %d %-14s delivered %5d end %8s  %s\n",
					s, style, res.Delivered, res.End.Truncate(time.Millisecond), outcome(res))
			}
			if res.Violation != nil {
				if cfg.expect != "" && res.Violation.Invariant == cfg.expect {
					fmt.Printf("expected violation fired: %v\n", res.Violation)
					return 0, nil
				}
				return report(cfg, opt, p, res)
			}
			if cfg.traceN > 0 && cfg.seed != 0 {
				printTail(res, cfg.traceN)
			}
		}
	}
	if cfg.expect != "" {
		fmt.Printf("FAIL: expected invariant %q never fired in %d runs\n", cfg.expect, runs)
		return 1, nil
	}
	fmt.Printf("ok: %d runs, %d styles, 0 violations (%.1fs)\n",
		runs, len(styles), time.Since(start).Seconds())
	return 0, nil
}

func outcome(res *torture.Result) string {
	if res.Violation != nil {
		return res.Violation.String()
	}
	return "ok"
}

// report prints a violation, optionally shrinks it to a minimal repro and
// saves it, and returns exit code 1.
func report(cfg config, opt torture.Options, p torture.Program, res *torture.Result) (int, error) {
	fmt.Printf("VIOLATION seed %d style %s: %v\n", p.Seed, p.Style, res.Violation)
	final, finalRes := p, res
	if cfg.shrink {
		sp, sr, err := torture.Shrink(p, opt, 0)
		if err != nil {
			return 2, err
		}
		if sr != nil && sr.Violation != nil {
			final, finalRes = sp, sr
			fmt.Printf("shrunk: %d ops -> %d ops, still fails %s\n",
				len(p.Ops), len(sp.Ops), sr.Violation.Invariant)
		}
	}
	if cfg.traceN > 0 {
		printTail(finalRes, cfg.traceN)
	}
	if cfg.repro != "" {
		r := torture.Repro{
			Note:      fmt.Sprintf("totemtorture seed %d style %s", p.Seed, p.Style),
			Chaos:     opt.Chaos,
			Expect:    finalRes.Violation.Invariant,
			Program:   final,
			Violation: finalRes.Violation,
		}
		if err := torture.SaveRepro(cfg.repro, r); err != nil {
			return 2, err
		}
		fmt.Printf("repro written to %s\n", cfg.repro)
	}
	return 1, nil
}

// replayFile re-executes a saved repro. The outcome is judged against the
// repro's Expect field: an empty Expect means the program must run clean,
// otherwise the recorded invariant must fire again.
func replayFile(cfg config, opt torture.Options) (int, error) {
	r, err := torture.LoadRepro(cfg.replay)
	if err != nil {
		return 2, err
	}
	if cfg.chaos == "" {
		opt.Chaos = r.Chaos
	}
	expect := r.Expect
	if cfg.expect != "" {
		expect = cfg.expect
	}
	res, err := torture.Execute(r.Program, opt)
	if err != nil {
		return 2, err
	}
	fmt.Printf("replay %s: %s\n", cfg.replay, outcome(res))
	if cfg.traceN > 0 {
		printTail(res, cfg.traceN)
	}
	switch {
	case expect == "" && res.Violation == nil:
		return 0, nil
	case expect != "" && res.Violation != nil && res.Violation.Invariant == expect:
		return 0, nil
	case expect != "":
		fmt.Printf("FAIL: expected invariant %q, got %s\n", expect, outcome(res))
		return 1, nil
	default:
		return 1, nil
	}
}

func printTail(res *torture.Result, n int) {
	lines := res.TraceTail
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	for _, l := range lines {
		fmt.Println("  " + l)
	}
}
