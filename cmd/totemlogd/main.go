// Command totemlogd runs one member of a replicated-log service on the
// ring: an HTTP front door whose appends are totally ordered through
// Totem RRP, made durable in crash-safe log segments with periodic
// snapshots, and deduplicated per client so retries after failover never
// store twice. A killed member restarts from stable storage, carries its
// persisted epoch back into the ring, and catches up from its peers
// before serving.
//
// Example: a three-node log on two redundant (loopback) networks.
//
//	totemlogd -id 1 -data /tmp/log1 -http 127.0.0.1:8081 \
//	          -listen 127.0.0.1:5401,127.0.0.1:5501 \
//	          -peer 2=127.0.0.1:5402,127.0.0.1:5502 \
//	          -peer 3=127.0.0.1:5403,127.0.0.1:5503 \
//	          -peer-http http://127.0.0.1:8082 -peer-http http://127.0.0.1:8083
//
// (and symmetrically for -id 2 and -id 3), or, for a quick look without
// any of that, an in-process cluster:
//
//	totemlogd -demo 3
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	totem "github.com/totem-rrp/totem"
	"github.com/totem-rrp/totem/internal/live"
	"github.com/totem-rrp/totem/internal/logd"
)

type stringList []string

func (p *stringList) String() string     { return strings.Join(*p, " ") }
func (p *stringList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var peers, peerHTTP stringList
	id := flag.Uint("id", 0, "node ID (non-zero, unique)")
	listen := flag.String("listen", "", "comma-separated ring addresses, one per redundant network")
	httpAddr := flag.String("http", "127.0.0.1:8080", "HTTP front-door address")
	dataDir := flag.String("data", "", "durable log directory (segments, snapshots, meta)")
	segBytes := flag.Int("segment-bytes", 4<<20, "rotate log segments at this size")
	snapEvery := flag.Int("snapshot-every", 4096, "snapshot the client table every N records (<0 disables)")
	rate := flag.Float64("rate", 500, "per-client append rate limit per second (<0 disables)")
	maxInflight := flag.Int("max-inflight", 1024, "admission control: max concurrent appends")
	maxRecord := flag.Int("max-record", 1<<20, "largest accepted record payload in bytes")
	demo := flag.Int("demo", 0, "ignore the other flags and boot an N-node in-process demo cluster")
	flag.Var(&peers, "peer", "ring peer spec id=addr1,addr2,... (repeatable)")
	flag.Var(&peerHTTP, "peer-http", "peer front-door URL for catch-up and sync (repeatable)")
	flag.Parse()

	var err error
	if *demo > 0 {
		err = runDemo(*demo)
	} else {
		err = run(uint32(*id), *listen, *httpAddr, *dataDir, peers, peerHTTP, logd.StoreOptions{
			SegmentBytes:  *segBytes,
			SnapshotEvery: *snapEvery,
		}, logd.ServerOptions{
			MaxRecordBytes: *maxRecord,
			Admission:      logd.AdmissionOptions{MaxInflight: *maxInflight, RatePerSec: *rate},
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(id uint32, listen, httpAddr, dataDir string, peers, peerHTTP stringList, sopt logd.StoreOptions, opt logd.ServerOptions) error {
	if id == 0 {
		return fmt.Errorf("-id is required and must be non-zero")
	}
	if listen == "" {
		return fmt.Errorf("-listen is required")
	}
	if dataDir == "" {
		return fmt.Errorf("-data is required")
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return err
	}
	store, err := logd.OpenStore(dataDir, sopt)
	if err != nil {
		return err
	}
	defer store.Close()
	rep := store.RecoveryReport()
	if rep.Recovered {
		fmt.Printf("recovered log: next offset %d, epoch %d (truncated=%v orphaned=%d)\n",
			store.Next(), store.Epoch(), rep.Truncated, rep.Orphaned)
	}

	cfg := totem.UDPConfig{
		ID:     totem.NodeID(id),
		Listen: strings.Split(listen, ","),
		Peers:  map[totem.NodeID][]string{},
	}
	for _, spec := range peers {
		pid, addrs, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -peer %q, want id=addr1,addr2", spec)
		}
		n, err := strconv.ParseUint(pid, 10, 32)
		if err != nil || n == 0 {
			return fmt.Errorf("bad peer id in %q", spec)
		}
		cfg.Peers[totem.NodeID(n)] = strings.Split(addrs, ",")
	}
	tr, err := totem.NewUDPTransport(cfg)
	if err != nil {
		return err
	}
	defer tr.Close()

	epoch := store.Epoch()
	node, err := totem.NewNode(totem.Config{
		ID:          totem.NodeID(id),
		Networks:    len(cfg.Listen),
		Replication: totem.Passive,
		Tune: func(o *totem.Options) {
			if epoch > o.SRP.InitialEpoch {
				o.SRP.InitialEpoch = epoch
			}
		},
	}, tr)
	if err != nil {
		return err
	}
	defer node.Close()

	opt.NodeID = fmt.Sprintf("node-%d", id)
	opt.Peers = peerHTTP
	opt.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	srv, err := logd.NewServer(node, store, opt)
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck
	defer hs.Close()
	fmt.Printf("totemlogd node %d serving http://%s (ring on %s)\n", id, ln.Addr(), listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down: final snapshot, then exit")
	return nil
}

// runDemo boots an N-node cluster in one process on the in-memory
// transport — the quickest way to try the HTTP API with curl.
func runDemo(nodes int) error {
	dir, err := os.MkdirTemp("", "totemlogd-demo-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	c, err := live.NewLogdCluster(live.LogdClusterOptions{
		Nodes: nodes,
		Dir:   dir,
		Logf:  func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.WaitLive(30 * time.Second); err != nil {
		return err
	}
	fmt.Printf("demo cluster up (%d nodes, data in %s):\n", nodes, dir)
	for i, ep := range c.Endpoints() {
		fmt.Printf("  node-%d  %s\n", i+1, ep)
	}
	fmt.Printf("try:\n  curl -X POST --data-binary hello '%s/v1/append?client=me&seq=1'\n  curl '%s/v1/read?from=0'\n",
		c.Endpoint(0), c.Endpoint(1))
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return nil
}
