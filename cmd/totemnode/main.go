// Command totemnode runs one Totem RRP node over real UDP sockets — a
// line-oriented group chat that demonstrates the library end to end.
// Every line typed on stdin is broadcast with total ordering; deliveries,
// membership changes and network-fault alarms are printed as they happen.
//
// Example: a two-node ring on two redundant (loopback) networks.
//
//	totemnode -id 1 -listen 127.0.0.1:5401,127.0.0.1:5501 \
//	          -peer 2=127.0.0.1:5402,127.0.0.1:5502 -style passive
//	totemnode -id 2 -listen 127.0.0.1:5402,127.0.0.1:5502 \
//	          -peer 1=127.0.0.1:5401,127.0.0.1:5501 -style passive
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	totem "github.com/totem-rrp/totem"
	"github.com/totem-rrp/totem/internal/debughttp"
)

type peerList []string

func (p *peerList) String() string     { return strings.Join(*p, " ") }
func (p *peerList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var peers peerList
	id := flag.Uint("id", 0, "node ID (non-zero, unique)")
	listen := flag.String("listen", "", "comma-separated local addresses, one per redundant network")
	style := flag.String("style", "passive", "replication style: none, active, passive, active-passive")
	k := flag.Int("k", 2, "copies for active-passive replication")
	shards := flag.Int("shards", 1, "independent rings over the same networks; >1 enables /key sends and per-shard debug views")
	debugAddr := flag.String("debug-addr", "", "serve /healthz /stats /trace (and /shards, /stats?shard=N on a sharded node) on this address (e.g. 127.0.0.1:6060)")
	flag.Var(&peers, "peer", "peer spec id=addr1,addr2,... (repeatable)")
	flag.Parse()
	if err := run(uint32(*id), *listen, *style, *k, *shards, *debugAddr, peers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parseStyle(s string) (totem.ReplicationStyle, error) {
	switch s {
	case "none":
		return totem.NoReplication, nil
	case "active":
		return totem.Active, nil
	case "passive":
		return totem.Passive, nil
	case "active-passive", "ap":
		return totem.ActivePassive, nil
	default:
		return 0, fmt.Errorf("unknown style %q", s)
	}
}

func run(id uint32, listen, styleName string, k, shards int, debugAddr string, peers peerList) error {
	if id == 0 {
		return fmt.Errorf("-id is required and must be non-zero")
	}
	if listen == "" {
		return fmt.Errorf("-listen is required")
	}
	style, err := parseStyle(styleName)
	if err != nil {
		return err
	}
	cfg := totem.UDPConfig{
		ID:     totem.NodeID(id),
		Listen: strings.Split(listen, ","),
		Peers:  map[totem.NodeID][]string{},
	}
	for _, spec := range peers {
		pid, addrs, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -peer %q, want id=addr1,addr2", spec)
		}
		n, err := strconv.ParseUint(pid, 10, 32)
		if err != nil || n == 0 {
			return fmt.Errorf("bad peer id in %q", spec)
		}
		cfg.Peers[totem.NodeID(n)] = strings.Split(addrs, ",")
	}
	tr, err := totem.NewUDPTransport(cfg)
	if err != nil {
		return err
	}
	defer tr.Close()

	ncfg := totem.Config{
		ID:          totem.NodeID(id),
		Networks:    len(cfg.Listen),
		Replication: style,
		K:           k,
		Shards:      shards,
	}
	if debugAddr != "" {
		// Retain recent protocol events for the /trace endpoint.
		ncfg.Tune = func(o *totem.Options) { o.TraceCapacity = 4096 }
	}
	node, err := totem.NewNode(ncfg, tr)
	if err != nil {
		return err
	}
	defer node.Close()

	if debugAddr != "" {
		dcfg := debughttp.Config{
			Health: func() any {
				ring, members := node.Ring()
				return map[string]any{
					"status":      "ok",
					"id":          id,
					"operational": node.Operational(),
					"ring_rep":    uint32(ring.Rep),
					"ring_epoch":  ring.Epoch,
					"members":     len(members),
					"faults":      node.NetworkFaults(),
					"shards":      node.Shards(),
				}
			},
			Metrics: node.Metrics(),
			Trace:   node.Trace(),
		}
		if node.Shards() > 1 {
			dcfg.Shards = node.Shards()
			dcfg.MetricsOf = node.MetricsOf
			dcfg.ShardHealth = func(s int) any {
				ring, members := node.RingOf(s)
				return map[string]any{
					"shard":       s,
					"operational": node.OperationalOf(s),
					"ring_rep":    uint32(ring.Rep),
					"ring_epoch":  ring.Epoch,
					"members":     len(members),
				}
			}
		}
		ln, stopDebug, err := debughttp.Serve(debugAddr, dcfg)
		if err != nil {
			return fmt.Errorf("debug endpoint: %w", err)
		}
		defer stopDebug()
		fmt.Printf("debug endpoints on http://%s/{healthz,stats,trace}\n", ln.Addr())
	}

	fmt.Printf("node %d up on %d network(s), style %v, %d shard(s) — type to broadcast; /status /stats /readmit <n> /key <k> <msg>\n",
		id, len(cfg.Listen), style, node.Shards())

	go func() {
		for d := range node.Deliveries() {
			if node.Shards() > 1 {
				fmt.Printf("[%v shard=%d seq=%d] %s\n", d.Sender, d.Shard, d.Seq, d.Payload)
			} else {
				fmt.Printf("[%v seq=%d] %s\n", d.Sender, d.Seq, d.Payload)
			}
		}
	}()
	go func() {
		for f := range node.Faults() {
			fmt.Printf("!! FAULT: %v\n", f)
		}
	}()
	go func() {
		for c := range node.FaultsCleared() {
			fmt.Printf("!! HEALED: %v\n", c)
		}
	}()
	go func() {
		for c := range node.ConfigChanges() {
			fmt.Printf("** %v\n", c)
		}
	}()

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		// Operator commands; anything else is broadcast.
		switch {
		case line == "/status":
			if node.Shards() > 1 {
				for s := 0; s < node.Shards(); s++ {
					ring, members := node.RingOf(s)
					fmt.Printf("shard %d ring %v members %v operational %v\n",
						s, ring, members, node.OperationalOf(s))
				}
				fmt.Printf("faults %v\n", node.NetworkFaults())
				continue
			}
			ring, members := node.Ring()
			fmt.Printf("ring %v members %v faults %v\n", ring, members, node.NetworkFaults())
		case line == "/stats":
			s := node.Stats()
			fmt.Printf("srp: %+v\nrrp tx=%v rx=%v gated=%d timedout=%d\n",
				s.SRP, s.RRP.TxPackets, s.RRP.RxPackets, s.RRP.TokensGated, s.RRP.TokensTimedOut)
			fmt.Printf("rrp faults=%d cleared=%d readmits=%d flapbackoffs=%d\n",
				s.RRP.FaultsRaised, s.RRP.FaultsCleared, s.RRP.Readmits, s.RRP.FlapBackoffs)
		case strings.HasPrefix(line, "/key "):
			rest := strings.TrimPrefix(line, "/key ")
			key, msg, ok := strings.Cut(rest, " ")
			if !ok {
				fmt.Println("usage: /key <key> <message>")
				continue
			}
			if err := node.SendKeyed([]byte(key), []byte(msg)); err != nil {
				fmt.Printf("keyed send failed: %v\n", err)
				continue
			}
			fmt.Printf("sent on shard %d\n", node.ShardOf([]byte(key)))
		case strings.HasPrefix(line, "/readmit "):
			var net int
			if _, err := fmt.Sscanf(line, "/readmit %d", &net); err != nil {
				fmt.Println("usage: /readmit <network>")
				continue
			}
			node.ReadmitNetwork(net)
			fmt.Printf("network %d readmitted; faults now %v\n", net, node.NetworkFaults())
		default:
			if err := node.Send([]byte(line)); err != nil {
				fmt.Printf("send failed: %v\n", err)
			}
		}
	}
	return sc.Err()
}
