// Command totembench regenerates the paper's evaluation figures on the
// discrete-event simulator. See EXPERIMENTS.md for the mapping to the
// paper's figures.
//
// Usage:
//
//	totembench -figure 6        # Fig. 6/8 data (4 nodes)
//	totembench -figure 7        # Fig. 7/9 data (6 nodes)
//	totembench -figure headline # >9000 1KB msgs/sec claim
//	totembench -figure sawtooth # packing peaks at 700/1400 B
//	totembench -figure ap       # active-passive (3 networks, K=2)
//	totembench -figure all
//	totembench -json            # hot-path allocation budget + wall-clock
//	                            # figure data, written to BENCH_hotpath.json
//	totembench -shards 4        # multi-ring scaling sweep (1 ring vs 4)
//	                            # with a >=3x aggregate throughput gate
//	totembench -bulk            # bulk-lane latency sweep: small-message
//	                            # p99 under a saturating SendBulk stream,
//	                            # gated against the no-bulk baseline
//	totembench -logd            # replicated-log append latency sweep:
//	                            # client-observed p50/p99 on a healthy
//	                            # 4-node cluster and under torture faults,
//	                            # gated on a p99 ceiling and 0 duplicates
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/totem-rrp/totem/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate: 6, 7, 8, 9, headline, sawtooth, ap, ablations, all")
	csvDir := flag.String("csv", "", "also write the sweep data as CSV files into this directory")
	jsonOut := flag.Bool("json", false, "run the hot-path benchmark suite and write it as JSON (skips -figure)")
	outPath := flag.String("out", "BENCH_hotpath.json", "output path for -json")
	liveRun := flag.Bool("live", false, "also run the live Figure 6 analog (4 nodes on loopback UDP, portable vs batched wire path) and gate on it")
	liveDur := flag.Duration("live-dur", 2*time.Second, "live: measured window per wire path")
	liveLen := flag.Int("live-len", 100, "live: payload bytes")
	liveFloor := flag.Float64("live-floor", 0, "live gate: minimum batched-driver msgs/sec (0 disables the absolute floor)")
	liveMsgsGain := flag.Float64("live-msgs-gain", 2.0, "live gate: required batch/portable msgs-per-sec ratio (ORed with -live-syscall-gain)")
	liveSyscallGain := flag.Float64("live-syscall-gain", 2.0, "live gate: required portable/batch syscalls-per-message ratio (ORed with -live-msgs-gain)")
	shards := flag.Int("shards", 0, "also run the multi-ring sharding sweep at this ring count vs a single-ring baseline, and gate on it (0 disables)")
	shardDur := flag.Duration("shards-dur", time.Second, "shards: measured window per point")
	shardLen := flag.Int("shards-len", 100, "shards: payload bytes")
	shardGain := flag.Float64("shards-gain", 3.0, "shards gate: required M-ring/1-ring aggregate msgs-per-sec ratio")
	bulkRun := flag.Bool("bulk", false, "also run the bulk-lane latency sweep (small-message p99 under a saturating SendBulk stream vs idle) and gate on it")
	bulkDur := flag.Duration("bulk-dur", 2*time.Second, "bulk: measured window per mode")
	bulkBytes := flag.Int("bulk-bytes", 4<<20, "bulk: size of each streamed transfer")
	bulkLen := flag.Int("bulk-len", 64, "bulk: probe payload bytes")
	bulkBound := flag.Float64("bulk-bound", 5.0, "bulk gate: max allowed p99 ratio of bulk-lane mode over the no-bulk baseline")
	logdRun := flag.Bool("logd", false, "also run the replicated-log sweep (client-observed append p50/p99, healthy and under torture faults) and gate on it")
	logdDur := flag.Duration("logd-dur", 2*time.Second, "logd: measured window for the healthy point (the faulted point doubles it)")
	logdClients := flag.Int("logd-clients", 8, "logd: concurrent writer count")
	logdLen := flag.Int("logd-len", 128, "logd: record payload bytes")
	logdCeiling := flag.Float64("logd-p99-ms", 250, "logd gate: max allowed healthy-point p99 in milliseconds")
	flag.Parse()
	if *jsonOut || *liveRun || *shards > 0 || *bulkRun || *logdRun {
		cfg := liveConfig{
			run:         *liveRun,
			dur:         *liveDur,
			msgLen:      *liveLen,
			floor:       *liveFloor,
			msgsGain:    *liveMsgsGain,
			syscallGain: *liveSyscallGain,
		}
		scfg := shardConfig{
			shards: *shards,
			dur:    *shardDur,
			msgLen: *shardLen,
			gain:   *shardGain,
		}
		bcfg := bulkConfig{
			run:      *bulkRun,
			dur:      *bulkDur,
			xferLen:  *bulkBytes,
			probeLen: *bulkLen,
			bound:    *bulkBound,
		}
		lcfg := logdConfig{
			run:       *logdRun,
			dur:       *logdDur,
			clients:   *logdClients,
			msgLen:    *logdLen,
			ceilingMs: *logdCeiling,
		}
		if err := runHotPath(*outPath, *jsonOut, cfg, scfg, bcfg, lcfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := run(*figure, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type liveConfig struct {
	run         bool
	dur         time.Duration
	msgLen      int
	floor       float64
	msgsGain    float64
	syscallGain float64
}

type shardConfig struct {
	shards int
	dur    time.Duration
	msgLen int
	gain   float64
}

type bulkConfig struct {
	run      bool
	dur      time.Duration
	xferLen  int
	probeLen int
	bound    float64
}

type logdConfig struct {
	run       bool
	dur       time.Duration
	clients   int
	msgLen    int
	ceilingMs float64
}

// runHotPath regenerates the allocation-budget report (micro allocs/op
// plus wall-clock Figure 6 points) and saves it for EXPERIMENTS.md. With
// live.run it appends the live wire sweep and enforces the wire-path
// gate: the batched driver must beat the portable one by the configured
// throughput or syscall margin. With shard.shards > 0 it appends the
// multi-ring sweep and enforces the sharding gate; with bulk.run it
// appends the bulk-lane latency sweep and enforces the p99 bound; with
// logd.run it appends the replicated-log sweep and enforces its p99
// ceiling and zero-duplicates invariant. Sweeps run without -json merge
// into an existing report file rather than clobbering it.
func runHotPath(path string, writeJSON bool, live liveConfig, shard shardConfig, bulk bulkConfig, logd logdConfig) error {
	var rep bench.HotPathReport
	var err error
	if writeJSON {
		rep, err = bench.HotPath()
		if err != nil {
			return err
		}
	} else {
		// Keep the simulated sections from the last full run so a
		// sweep-only invocation updates its own section in place.
		if prev, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(prev, &rep); err != nil {
				return fmt.Errorf("existing %s: %w", path, err)
			}
		}
		// Shard, bulk, and logd sweeps always persist their section;
		// -live alone keeps its historical print-and-gate-only behaviour.
		writeJSON = shard.shards > 0 || bulk.run || logd.run
	}
	if live.run {
		points, err := bench.LiveWire(bench.LiveWireOptions{
			Duration: live.dur,
			MsgLen:   live.msgLen,
		})
		if err != nil {
			return err
		}
		rep.LiveWire = points
	}
	if shard.shards > 0 {
		points, err := bench.ShardScale(bench.ShardScaleOptions{
			Shards:   shard.shards,
			Duration: shard.dur,
			MsgLen:   shard.msgLen,
		})
		if err != nil {
			return err
		}
		rep.ShardScale = points
	}
	if bulk.run {
		points, err := bench.BulkSweep(bench.BulkOptions{
			Duration:      bulk.dur,
			TransferBytes: bulk.xferLen,
			MsgLen:        bulk.probeLen,
		})
		if err != nil {
			return err
		}
		rep.Bulk = points
	}
	if logd.run {
		points, err := bench.LogdSweep(bench.LogdOptions{
			Duration:     logd.dur,
			Clients:      logd.clients,
			PayloadBytes: logd.msgLen,
		})
		if err != nil {
			return err
		}
		rep.Logd = points
	}
	bench.PrintHotPath(os.Stdout, rep)
	if writeJSON {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteHotPathJSON(f, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	if live.run {
		verdict, ok := bench.LiveWireGate(rep.LiveWire, live.msgsGain, live.syscallGain, live.floor)
		fmt.Println(verdict)
		if !ok {
			return fmt.Errorf("live wire-path gate failed")
		}
	}
	if shard.shards > 0 {
		verdict, ok := bench.ShardGate(rep.ShardScale, shard.gain)
		fmt.Println(verdict)
		if !ok {
			return fmt.Errorf("sharding gate failed")
		}
	}
	if bulk.run {
		verdict, ok := bench.BulkGate(rep.Bulk, bulk.bound)
		fmt.Println(verdict)
		if !ok {
			return fmt.Errorf("bulk lane gate failed")
		}
	}
	if logd.run {
		verdict, ok := bench.LogdGate(rep.Logd, logd.ceilingMs)
		fmt.Println(verdict)
		if !ok {
			return fmt.Errorf("logd gate failed")
		}
	}
	return nil
}

// writeCSV saves one figure's series when -csv is set.
func writeCSV(dir, name string, series []bench.Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.WriteCSV(f, series)
}

func run(figure, csvDir string) error {
	out := os.Stdout
	fig46 := func() error {
		series, err := bench.Figure(4, bench.PaperLengths)
		if err != nil {
			return err
		}
		bench.PrintTable(out, "Figures 6 and 8: transmission rate, 4 nodes (msgs/sec and KB/s)", series)
		return writeCSV(csvDir, "figure6-8_4nodes", series)
	}
	fig79 := func() error {
		series, err := bench.Figure(6, bench.PaperLengths)
		if err != nil {
			return err
		}
		bench.PrintTable(out, "Figures 7 and 9: transmission rate, 6 nodes (msgs/sec and KB/s)", series)
		return writeCSV(csvDir, "figure7-9_6nodes", series)
	}
	headline := func() error {
		r, err := bench.Headline(4)
		if err != nil {
			return err
		}
		bench.PrintHeadline(out, r)
		return nil
	}
	sawtooth := func() error {
		s, err := bench.Sawtooth(4)
		if err != nil {
			return err
		}
		bench.PrintTable(out, "Packing sawtooth (§8): peaks at 700 and 1400 bytes", []bench.Series{s})
		return writeCSV(csvDir, "sawtooth", []bench.Series{s})
	}
	ap := func() error {
		s, err := bench.ActivePassiveSweep(4, 2, bench.PaperLengths)
		if err != nil {
			return err
		}
		bench.PrintTable(out, "Active-passive replication (§7), 4 nodes, N=3, K=2", []bench.Series{s})
		return writeCSV(csvDir, "active-passive", []bench.Series{s})
	}
	ablations := func() error {
		win, err := bench.AblateWindowSize([]int{10, 20, 40, 80, 160, 320})
		if err != nil {
			return err
		}
		bench.PrintTable(out, "Ablation: flow-control window (first column = window size)", []bench.Series{win})
		visit, err := bench.AblateMaxPerVisit([]int{1, 5, 10, 20, 40})
		if err != nil {
			return err
		}
		bench.PrintTable(out, "Ablation: packets per token visit (first column = cap)", []bench.Series{visit})
		ks, err := bench.AblateK([]int{2, 3})
		if err != nil {
			return err
		}
		bench.PrintTable(out, "Ablation: active-passive K on 4 networks (first column = K)", []bench.Series{ks})
		ring, err := bench.AblateRingSize([]int{2, 4, 6, 8})
		if err != nil {
			return err
		}
		bench.PrintTable(out, "Ablation: ring size (first column = members)", []bench.Series{ring})
		return nil
	}
	switch figure {
	case "6", "8":
		return fig46()
	case "7", "9":
		return fig79()
	case "headline":
		return headline()
	case "sawtooth":
		return sawtooth()
	case "ap":
		return ap()
	case "ablations":
		return ablations()
	case "all":
		for _, f := range []func() error{headline, fig46, fig79, sawtooth, ap, ablations} {
			if err := f(); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	default:
		return fmt.Errorf("unknown figure %q", figure)
	}
}
