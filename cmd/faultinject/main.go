// Command faultinject runs scripted fault-injection scenarios on the
// discrete-event simulator, prints an event timeline and verifies each
// scenario's post-conditions, exiting non-zero if any fail. The scenarios
// demonstrate the paper's §3 fault model — every fault class stays
// transparent to the application while the RRP monitors raise the
// operator alarm — plus the recovery monitor's automatic readmission of
// healed networks.
//
//	faultinject -scenario netfail   # total failure of one network
//	faultinject -scenario sendfault # one node cannot send on one network
//	faultinject -scenario recvfault # one node cannot receive on one network
//	faultinject -scenario partition # one network splits in half
//	faultinject -scenario crash     # network death plus node crash
//	faultinject -scenario heal      # network dies, heals, is auto-readmitted
//	faultinject -scenario flap      # network oscillates; probation doubles
//	faultinject -scenario all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/sim"
	"github.com/totem-rrp/totem/internal/stack"
	"github.com/totem-rrp/totem/internal/trace"
)

func main() {
	scenario := flag.String("scenario", "all",
		"netfail | sendfault | recvfault | partition | crash | heal | flap | all")
	style := flag.String("style", "active", "replication style: active | passive | active-passive")
	traceN := flag.Int("trace", 0, "dump the last N protocol trace events after each scenario")
	flag.Parse()
	if err := run(*scenario, *style, *traceN); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parseStyle(s string) (proto.ReplicationStyle, int, error) {
	switch s {
	case "active":
		return proto.ReplicationActive, 2, nil
	case "passive":
		return proto.ReplicationPassive, 2, nil
	case "active-passive", "ap":
		return proto.ReplicationActivePassive, 3, nil
	default:
		return 0, 0, fmt.Errorf("unknown style %q", s)
	}
}

// snapshot captures the cluster's application-visible state at injection
// time; checks compare against it to verify what the fault did and did
// not disturb.
type snapshot struct {
	delivered uint64               // messages ordered at node 1
	configs   map[proto.NodeID]int // membership changes seen so far
}

// scenario is one scripted fault run: optional per-node tuning, the
// injection script, how long to let it play out, and the post-conditions.
// check returns a list of violated post-conditions (empty = pass); it
// receives the run's structured-event counter so post-conditions can
// assert on what the machines reported, not just on end-state structure.
type scenario struct {
	tune   func(c *stack.Config)
	inject func(c *sim.Cluster)
	settle time.Duration
	check  func(c *sim.Cluster, pre snapshot, ctr *trace.Counter) []string
}

// eventsObserved is the universal structured-event post-condition: the
// state machines must have reported membership phase transitions and
// token activity through the probe spine during the run.
func eventsObserved(ctr *trace.Counter) []string {
	var fails []string
	if ctr.Count(trace.Machine) == 0 {
		fails = append(fails, "no machine probe events were recorded")
	}
	if ctr.CodeCount(proto.ProbePhase) == 0 {
		fails = append(fails, "no membership phase transitions were reported")
	}
	return fails
}

// deliveryContinued is the universal post-condition (paper §3): the
// application keeps receiving totally-ordered messages across the fault.
func deliveryContinued(c *sim.Cluster, pre snapshot) []string {
	if c.Node(1).DeliveredCount <= pre.delivered {
		return []string{"delivery stalled across the fault"}
	}
	return nil
}

// membershipStable asserts that no node saw a configuration change after
// injection — network faults must never look like node faults.
func membershipStable(c *sim.Cluster, pre snapshot) []string {
	var fails []string
	for _, id := range c.NodeIDs() {
		n := c.Node(id)
		if n.Stack == nil {
			continue
		}
		if got := len(n.Configs); got != pre.configs[id] {
			fails = append(fails, fmt.Sprintf("node %v saw %d membership change(s) after injection", id, got-pre.configs[id]))
		}
	}
	return fails
}

// fastRecovery shortens the decay interval so probation (3 windows by
// default) completes in hundreds of milliseconds of virtual time.
func fastRecovery(c *stack.Config) {
	c.RRP.DecayInterval = 100 * time.Millisecond
}

func netfailScenario() scenario {
	return scenario{
		inject: func(c *sim.Cluster) {
			fmt.Println("injecting: total failure of network 1 (paper §3, third fault type, full sets)")
			c.KillNetwork(1)
		},
		settle: 3 * time.Second,
		check: func(c *sim.Cluster, pre snapshot, ctr *trace.Counter) []string {
			fails := append(deliveryContinued(c, pre), membershipStable(c, pre)...)
			fails = append(fails, eventsObserved(ctr)...)
			// The network never heals, so the verdict must stand: the
			// recovery monitor sees no receptions and keeps it excluded.
			for _, id := range c.NodeIDs() {
				if !c.Node(id).Stack.Replicator().Faulty()[1] {
					fails = append(fails, fmt.Sprintf("node %v readmitted the dead network", id))
				}
			}
			if ctr.Count(trace.FaultRaised) == 0 {
				fails = append(fails, "no structured fault-raised event was recorded")
			}
			if ctr.CodeCount(proto.ProbeMonitorThreshold) == 0 {
				fails = append(fails, "no monitor reported crossing its conviction threshold")
			}
			return fails
		},
	}
}

func sendfaultScenario() scenario {
	return scenario{
		inject: func(c *sim.Cluster) {
			fmt.Println("injecting: node 2 cannot send on network 0 (paper §3, first fault type)")
			c.BlockSend(2, 0, true)
		},
		settle: 3 * time.Second,
		check: func(c *sim.Cluster, pre snapshot, ctr *trace.Counter) []string {
			fails := append(deliveryContinued(c, pre), membershipStable(c, pre)...)
			return append(fails, eventsObserved(ctr)...)
		},
	}
}

func recvfaultScenario() scenario {
	return scenario{
		inject: func(c *sim.Cluster) {
			fmt.Println("injecting: node 3 cannot receive on network 0 (paper §3, second fault type)")
			c.BlockRecv(3, 0, true)
		},
		settle: 3 * time.Second,
		check: func(c *sim.Cluster, pre snapshot, ctr *trace.Counter) []string {
			fails := append(deliveryContinued(c, pre), membershipStable(c, pre)...)
			return append(fails, eventsObserved(ctr)...)
		},
	}
}

func partitionScenario() scenario {
	return scenario{
		inject: func(c *sim.Cluster) {
			fmt.Println("injecting: network 0 partitioned into {1,2} | {3,4} (paper §3, subset fault)")
			c.Partition(0, map[proto.NodeID]int{1: 0, 2: 0, 3: 1, 4: 1})
		},
		settle: 3 * time.Second,
		check: func(c *sim.Cluster, pre snapshot, ctr *trace.Counter) []string {
			fails := append(deliveryContinued(c, pre), membershipStable(c, pre)...)
			return append(fails, eventsObserved(ctr)...)
		},
	}
}

func crashScenario() scenario {
	return scenario{
		inject: func(c *sim.Cluster) {
			fmt.Println("injecting: network 1 death, then node 4 crash")
			c.KillNetwork(1)
			c.Sim.After(500*time.Millisecond, func() { c.Crash(4) })
		},
		settle: 3 * time.Second,
		check: func(c *sim.Cluster, pre snapshot, ctr *trace.Counter) []string {
			fails := append(deliveryContinued(c, pre), eventsObserved(ctr)...)
			// Here a membership change is the point: the survivors must
			// reform as a three-member ring.
			for _, id := range c.NodeIDs() {
				n := c.Node(id)
				if n.Stack == nil || n.Crashed() {
					continue
				}
				if got := len(n.Stack.SRP().Members()); got != 3 {
					fails = append(fails, fmt.Sprintf("node %v has %d members, want 3", id, got))
				}
			}
			return fails
		},
	}
}

// healScenario is the headline self-healing run: a network dies, is
// repaired two seconds later, and — without any operator readmit — the
// recovery monitor returns it to service and traffic resumes on it.
func healScenario() scenario {
	var txAtRevive uint64
	return scenario{
		tune: fastRecovery,
		inject: func(c *sim.Cluster) {
			fmt.Println("injecting: total failure of network 1, repaired after 2s — no operator readmit")
			c.KillNetwork(1)
			c.Sim.After(2*time.Second, func() {
				c.ReviveNetwork(1)
				txAtRevive = c.Node(1).Stack.Replicator().Stats().TxPackets[1]
				fmt.Printf("  t=%-12v network 1 repaired; waiting out probation\n", c.Sim.Now())
			})
		},
		settle: 4 * time.Second,
		check: func(c *sim.Cluster, pre snapshot, ctr *trace.Counter) []string {
			fails := append(deliveryContinued(c, pre), membershipStable(c, pre)...)
			fails = append(fails, eventsObserved(ctr)...)
			// The recovery monitor must have narrated its work through the
			// probe spine: probes on the faulted network, probation windows
			// counted down, and the readmission itself.
			if ctr.CodeCount(proto.ProbeProbeSent) == 0 {
				fails = append(fails, "recovery monitor never reported sending a probe")
			}
			if ctr.CodeCount(proto.ProbeProbation) == 0 {
				fails = append(fails, "recovery monitor never reported probation progress")
			}
			if ctr.Count(trace.FaultRaised) == 0 || ctr.Count(trace.FaultCleared) == 0 {
				fails = append(fails, "fault raise/clear events missing from the structured stream")
			}
			for _, id := range c.NodeIDs() {
				n := c.Node(id)
				if len(n.Faults) == 0 {
					fails = append(fails, fmt.Sprintf("node %v never raised the fault alarm", id))
				}
				cleared := false
				for _, cr := range n.Cleared {
					if cr.Network == 1 {
						cleared = true
					}
				}
				if !cleared {
					fails = append(fails, fmt.Sprintf("node %v never auto-readmitted network 1", id))
				}
				if n.Stack.Replicator().Faulty()[1] {
					fails = append(fails, fmt.Sprintf("node %v still marks network 1 faulty", id))
				}
			}
			if tx := c.Node(1).Stack.Replicator().Stats().TxPackets[1]; tx <= txAtRevive {
				fails = append(fails, "no traffic resumed on the healed network")
			}
			return fails
		},
	}
}

// flapScenario drives an oscillating network and verifies flap damping:
// each re-fault within the flap window doubles the next probation, so the
// readmission reports show a growing clean-window requirement.
func flapScenario() scenario {
	return scenario{
		tune: fastRecovery,
		inject: func(c *sim.Cluster) {
			fmt.Println("injecting: network 1 flapping — down 500ms, up 2s, three cycles")
			c.ScheduleFlap(1, 500*time.Millisecond, 2*time.Second, 3)
		},
		settle: 9 * time.Second,
		check: func(c *sim.Cluster, pre snapshot, ctr *trace.Counter) []string {
			fails := append(deliveryContinued(c, pre), membershipStable(c, pre)...)
			fails = append(fails, eventsObserved(ctr)...)
			if ctr.CodeCount(proto.ProbeFlapBackoff) == 0 {
				fails = append(fails, "no structured flap-backoff event was recorded")
			}
			if ctr.Count(trace.FaultCleared) < 2 {
				fails = append(fails, "fewer than two structured readmission events across flap cycles")
			}
			damped := false
			for _, id := range c.NodeIDs() {
				n := c.Node(id)
				if len(n.Cleared) >= 2 && n.Cleared[len(n.Cleared)-1].Probation > n.Cleared[0].Probation {
					damped = true
				}
			}
			if !damped {
				fails = append(fails, "no node showed probation doubling across flap cycles")
			}
			backoffs := false
			for _, id := range c.NodeIDs() {
				if c.Node(id).Stack.Replicator().Stats().FlapBackoffs > 0 {
					backoffs = true
				}
			}
			if !backoffs {
				fails = append(fails, "no node counted a flap backoff")
			}
			return fails
		},
	}
}

func run(name, styleName string, traceN int) error {
	style, networks, err := parseStyle(styleName)
	if err != nil {
		return err
	}
	scenarios := map[string]func() scenario{
		"netfail":   netfailScenario,
		"sendfault": sendfaultScenario,
		"recvfault": recvfaultScenario,
		"partition": partitionScenario,
		"crash":     crashScenario,
		"heal":      healScenario,
		"flap":      flapScenario,
	}
	names := []string{"netfail", "sendfault", "recvfault", "partition", "crash", "heal", "flap"}
	if name != "all" {
		if _, ok := scenarios[name]; !ok {
			return fmt.Errorf("unknown scenario %q", name)
		}
		names = []string{name}
	}
	failed := 0
	for _, n := range names {
		fmt.Printf("=== scenario %s (%v replication, %d networks) ===\n", n, style, networks)
		fails, err := runOne(style, networks, traceN, scenarios[n]())
		if err != nil {
			return err
		}
		if len(fails) == 0 {
			fmt.Println("  PASS")
		} else {
			failed++
			for _, f := range fails {
				fmt.Printf("  FAIL: %s\n", f)
			}
		}
		fmt.Println()
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenario(s) failed their post-conditions", failed, len(names))
	}
	return nil
}

func runOne(style proto.ReplicationStyle, networks, traceN int, sc scenario) ([]string, error) {
	// Every run counts structured events; post-conditions assert on them.
	ctr := trace.NewCounter()
	var ring *trace.Ring
	var tracer trace.Tracer = ctr
	if traceN > 0 {
		ring = trace.NewRing(traceN)
		// Packet-level tracing of a saturated ring would swamp the dump;
		// keep the control-plane events.
		tracer = trace.Multi{ctr, trace.Filter{Next: ring, Keep: func(e trace.Event) bool {
			return e.Kind != trace.PacketSent && e.Kind != trace.PacketReceived &&
				e.Kind != trace.Delivered
		}}}
	}
	var tune func(proto.NodeID, *stack.Config)
	if sc.tune != nil {
		tune = func(_ proto.NodeID, c *stack.Config) { sc.tune(c) }
	}
	c, err := sim.NewCluster(sim.Config{
		Nodes:    4,
		Networks: networks,
		Style:    style,
		Net:      sim.DefaultNetworkParams(),
		Host:     sim.DefaultNodeParams(),
		Seed:     1,
		TuneSRP:  tune,
		Trace:    tracer,
	})
	if err != nil {
		return nil, err
	}
	// Timeline hooks.
	for _, id := range c.NodeIDs() {
		n := c.Node(id)
		n.KeepPayloads = false
		n.OnFault = func(f proto.FaultReport) {
			fmt.Printf("  t=%-12v node %v ALARM: %v\n", c.Sim.Now(), n.ID, f)
		}
		n.OnCleared = func(cr proto.ClearReport) {
			fmt.Printf("  t=%-12v node %v HEALED: %v\n", c.Sim.Now(), n.ID, cr)
		}
		n.OnConfig = func(cc proto.ConfigChange) {
			fmt.Printf("  t=%-12v node %v config: %v\n", c.Sim.Now(), n.ID, cc)
		}
	}
	c.Start()
	formed := c.RunUntil(func() bool {
		for _, id := range c.NodeIDs() {
			if len(c.Node(id).Stack.SRP().Members()) != 4 {
				return false
			}
		}
		return true
	}, 10*time.Millisecond, 10*time.Second)
	if !formed {
		return nil, fmt.Errorf("ring never formed")
	}

	// Steady workload.
	payload := make([]byte, 512)
	var pump func()
	pump = func() {
		for _, id := range c.NodeIDs() {
			n := c.Node(id)
			for i := 0; i < 16 && n.Stack.Backlog() < 16; i++ {
				if !c.Submit(id, payload) {
					break
				}
			}
		}
		c.Sim.After(time.Millisecond, pump)
	}
	c.Sim.After(0, pump)
	c.Run(300 * time.Millisecond)

	pre := snapshot{
		delivered: c.Node(1).DeliveredCount,
		configs:   make(map[proto.NodeID]int),
	}
	for _, id := range c.NodeIDs() {
		pre.configs[id] = len(c.Node(id).Configs)
	}
	fmt.Printf("  t=%-12v steady state: %d messages ordered at node 1\n", c.Sim.Now(), pre.delivered)
	sc.inject(c)
	c.Run(sc.settle)

	after := c.Node(1).DeliveredCount
	rate := float64(after-pre.delivered) / sc.settle.Seconds()
	fmt.Printf("  t=%-12v delivery continued: +%d messages (%.0f msgs/sec) across the fault\n",
		c.Sim.Now(), after-pre.delivered, rate)
	for _, id := range c.NodeIDs() {
		n := c.Node(id)
		if n.Stack == nil {
			continue
		}
		fmt.Printf("  node %v: faulty=%v state=%v members=%d\n",
			id, n.Stack.Replicator().Faulty(), n.Stack.SRP().State(), len(n.Stack.SRP().Members()))
	}
	if ring != nil {
		fmt.Printf("  --- last %d control-plane trace events ---\n", ring.Len())
		if err := ring.Dump(os.Stdout); err != nil {
			return nil, err
		}
	}
	return sc.check(c, pre, ctr), nil
}
