// Command faultinject runs scripted fault-injection scenarios on the
// discrete-event simulator and prints an event timeline, demonstrating
// the paper's §3 fault model: every fault class stays transparent to the
// application while the RRP monitors raise the operator alarm.
//
//	faultinject -scenario netfail   # total failure of one network
//	faultinject -scenario sendfault # one node cannot send on one network
//	faultinject -scenario recvfault # one node cannot receive on one network
//	faultinject -scenario partition # one network splits in half
//	faultinject -scenario crash     # network death plus node crash
//	faultinject -scenario all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/totem-rrp/totem/internal/proto"
	"github.com/totem-rrp/totem/internal/sim"
	"github.com/totem-rrp/totem/internal/trace"
)

func main() {
	scenario := flag.String("scenario", "all", "netfail | sendfault | recvfault | partition | crash | all")
	style := flag.String("style", "active", "replication style: active | passive | active-passive")
	traceN := flag.Int("trace", 0, "dump the last N protocol trace events after each scenario")
	flag.Parse()
	if err := run(*scenario, *style, *traceN); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parseStyle(s string) (proto.ReplicationStyle, int, error) {
	switch s {
	case "active":
		return proto.ReplicationActive, 2, nil
	case "passive":
		return proto.ReplicationPassive, 2, nil
	case "active-passive", "ap":
		return proto.ReplicationActivePassive, 3, nil
	default:
		return 0, 0, fmt.Errorf("unknown style %q", s)
	}
}

func run(scenario, styleName string, traceN int) error {
	style, networks, err := parseStyle(styleName)
	if err != nil {
		return err
	}
	scenarios := map[string]func(*sim.Cluster){
		"netfail": func(c *sim.Cluster) {
			fmt.Println("injecting: total failure of network 1 (paper §3, third fault type, full sets)")
			c.KillNetwork(1)
		},
		"sendfault": func(c *sim.Cluster) {
			fmt.Println("injecting: node 2 cannot send on network 0 (paper §3, first fault type)")
			c.BlockSend(2, 0, true)
		},
		"recvfault": func(c *sim.Cluster) {
			fmt.Println("injecting: node 3 cannot receive on network 0 (paper §3, second fault type)")
			c.BlockRecv(3, 0, true)
		},
		"partition": func(c *sim.Cluster) {
			fmt.Println("injecting: network 0 partitioned into {1,2} | {3,4} (paper §3, subset fault)")
			c.Partition(0, map[proto.NodeID]int{1: 0, 2: 0, 3: 1, 4: 1})
		},
		"crash": func(c *sim.Cluster) {
			fmt.Println("injecting: network 1 death, then node 4 crash")
			c.KillNetwork(1)
			c.Sim.After(500*time.Millisecond, func() { c.Crash(4) })
		},
	}
	names := []string{"netfail", "sendfault", "recvfault", "partition", "crash"}
	if scenario != "all" {
		if _, ok := scenarios[scenario]; !ok {
			return fmt.Errorf("unknown scenario %q", scenario)
		}
		names = []string{scenario}
	}
	for _, name := range names {
		fmt.Printf("=== scenario %s (%v replication, %d networks) ===\n", name, style, networks)
		if err := runOne(style, networks, traceN, scenarios[name]); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runOne(style proto.ReplicationStyle, networks, traceN int, inject func(*sim.Cluster)) error {
	var ring *trace.Ring
	var tracer trace.Tracer = trace.Discard
	if traceN > 0 {
		ring = trace.NewRing(traceN)
		// Packet-level tracing of a saturated ring would swamp the dump;
		// keep the control-plane events.
		tracer = trace.Filter{Next: ring, Keep: func(e trace.Event) bool {
			return e.Kind != trace.PacketSent && e.Kind != trace.PacketReceived &&
				e.Kind != trace.Delivered
		}}
	}
	c, err := sim.NewCluster(sim.Config{
		Nodes:    4,
		Networks: networks,
		Style:    style,
		Net:      sim.DefaultNetworkParams(),
		Host:     sim.DefaultNodeParams(),
		Seed:     1,
		Trace:    tracer,
	})
	if err != nil {
		return err
	}
	// Timeline hooks.
	for _, id := range c.NodeIDs() {
		n := c.Node(id)
		n.KeepPayloads = false
		n.OnFault = func(f proto.FaultReport) {
			fmt.Printf("  t=%-12v node %v ALARM: %v\n", c.Sim.Now(), n.ID, f)
		}
		n.OnConfig = func(cc proto.ConfigChange) {
			fmt.Printf("  t=%-12v node %v config: %v\n", c.Sim.Now(), n.ID, cc)
		}
	}
	c.Start()
	formed := c.RunUntil(func() bool {
		for _, id := range c.NodeIDs() {
			if len(c.Node(id).Stack.SRP().Members()) != 4 {
				return false
			}
		}
		return true
	}, 10*time.Millisecond, 10*time.Second)
	if !formed {
		return fmt.Errorf("ring never formed")
	}

	// Steady workload.
	payload := make([]byte, 512)
	var pump func()
	pump = func() {
		for _, id := range c.NodeIDs() {
			n := c.Node(id)
			for i := 0; i < 16 && n.Stack.Backlog() < 16; i++ {
				if !c.Submit(id, payload) {
					break
				}
			}
		}
		c.Sim.After(time.Millisecond, pump)
	}
	c.Sim.After(0, pump)
	c.Run(300 * time.Millisecond)

	before := c.Node(1).DeliveredCount
	fmt.Printf("  t=%-12v steady state: %d messages ordered at node 1\n", c.Sim.Now(), before)
	inject(c)
	c.Run(3 * time.Second)

	after := c.Node(1).DeliveredCount
	rate := float64(after-before) / 3.0
	fmt.Printf("  t=%-12v delivery continued: +%d messages (%.0f msgs/sec) across the fault\n",
		c.Sim.Now(), after-before, rate)
	for _, id := range c.NodeIDs() {
		n := c.Node(id)
		if n.Stack == nil {
			continue
		}
		fmt.Printf("  node %v: faulty=%v state=%v members=%d\n",
			id, n.Stack.Replicator().Faulty(), n.Stack.SRP().State(), len(n.Stack.SRP().Members()))
	}
	if ring != nil {
		fmt.Printf("  --- last %d control-plane trace events ---\n", ring.Len())
		if err := ring.Dump(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
