package totem_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	totem "github.com/totem-rrp/totem"
)

// startRing boots n nodes on a fresh MemHub with the given style and
// waits until they share one operational ring.
func startRing(t *testing.T, n, networks int, style totem.ReplicationStyle) (*totem.MemHub, []*totem.Node) {
	t.Helper()
	hub := totem.NewMemHub(networks)
	nodes := make([]*totem.Node, 0, n)
	for i := 1; i <= n; i++ {
		tr, err := hub.Join(totem.NodeID(i))
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		node, err := totem.NewNode(totem.Config{
			ID:          totem.NodeID(i),
			Networks:    networks,
			Replication: style,
		}, tr)
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		nodes = append(nodes, node)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	waitFullRing(t, nodes, n, 15*time.Second)
	return hub, nodes
}

func waitFullRing(t *testing.T, nodes []*totem.Node, want int, budget time.Duration) {
	t.Helper()
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		ok := true
		var ring totem.RingID
		for i, n := range nodes {
			r, members := n.Ring()
			if !n.Operational() || len(members) != want {
				ok = false
				break
			}
			if i == 0 {
				ring = r
			} else if r != ring {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, n := range nodes {
		r, members := n.Ring()
		t.Logf("node %v: operational=%v ring=%v members=%v", n.ID(), n.Operational(), r, members)
	}
	t.Fatalf("ring did not form within %v", budget)
}

func TestRealTimeRingFormsAndDelivers(t *testing.T) {
	for _, tc := range []struct {
		networks int
		style    totem.ReplicationStyle
	}{
		{1, totem.NoReplication},
		{2, totem.Active},
		{2, totem.Passive},
		{3, totem.ActivePassive},
	} {
		t.Run(tc.style.String(), func(t *testing.T) {
			_, nodes := startRing(t, 3, tc.networks, tc.style)
			const perNode = 10
			for i := 0; i < perNode; i++ {
				for _, n := range nodes {
					if err := n.Send([]byte(fmt.Sprintf("%v/%d", n.ID(), i))); err != nil {
						t.Fatalf("Send: %v", err)
					}
				}
			}
			total := perNode * len(nodes)
			var wg sync.WaitGroup
			sequences := make([][]string, len(nodes))
			for i, n := range nodes {
				wg.Add(1)
				go func() {
					defer wg.Done()
					timeout := time.After(15 * time.Second)
					for len(sequences[i]) < total {
						select {
						case d := <-n.Deliveries():
							sequences[i] = append(sequences[i], string(d.Payload))
						case <-timeout:
							return
						}
					}
				}()
			}
			wg.Wait()
			for i := range sequences {
				if len(sequences[i]) != total {
					t.Fatalf("node %v delivered %d/%d", nodes[i].ID(), len(sequences[i]), total)
				}
			}
			for i := 1; i < len(sequences); i++ {
				for j := range sequences[0] {
					if sequences[i][j] != sequences[0][j] {
						t.Fatalf("total order violated at %d: %q vs %q", j, sequences[i][j], sequences[0][j])
					}
				}
			}
		})
	}
}

func TestNetworkFaultIsTransparent(t *testing.T) {
	// The paper's headline behaviour (E7): kill one of two networks under
	// active replication. The ring keeps delivering, a fault report is
	// raised, and no membership change occurs.
	hub, nodes := startRing(t, 3, 2, totem.Active)

	// Drain config changes so far.
	ringBefore, _ := nodes[0].Ring()

	hub.KillNetwork(1)

	// Traffic keeps the monitors fed and proves liveness.
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.After(20 * time.Second)
		got := 0
		for got < 200 {
			select {
			case <-nodes[1].Deliveries():
				got++
			case <-deadline:
				return
			}
		}
	}()
	sent := 0
	for sent < 200 {
		if err := nodes[0].Send([]byte("after-fault")); err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		sent++
	}
	<-done

	// A fault report must arrive on at least one node.
	faulted := false
	timeout := time.After(20 * time.Second)
	for !faulted {
		select {
		case f := <-nodes[0].Faults():
			if f.Network == 1 {
				faulted = true
			}
		case <-timeout:
			t.Fatal("no fault report after killing network 1")
		}
	}
	if f := nodes[0].NetworkFaults(); !f[1] || f[0] {
		t.Fatalf("NetworkFaults = %v, want only network 1 faulty", f)
	}

	// Transparency: the ring id must be unchanged (no membership change).
	ringAfter, members := nodes[0].Ring()
	if ringAfter != ringBefore {
		t.Fatalf("membership changed on network fault: %v -> %v", ringBefore, ringAfter)
	}
	if len(members) != 3 {
		t.Fatalf("members = %v", members)
	}
}

func TestNodeCrashShrinksMembership(t *testing.T) {
	_, nodes := startRing(t, 3, 2, totem.Passive)
	nodes[2].Close()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		_, members := nodes[0].Ring()
		if len(members) == 2 && nodes[0].Operational() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("membership did not shrink after crash")
}

func TestConfigChangesStream(t *testing.T) {
	hub := totem.NewMemHub(2)
	tr1, _ := hub.Join(1)
	n1, err := totem.NewNode(totem.Config{ID: 1, Replication: totem.Active}, tr1)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	// First regular config: the singleton ring.
	select {
	case c := <-n1.ConfigChanges():
		if c.Transitional || len(c.Members) != 1 {
			t.Fatalf("first config %+v", c)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no initial config change")
	}
	// A second node joins: we must observe a transitional then a regular
	// two-member configuration.
	tr2, _ := hub.Join(2)
	n2, err := totem.NewNode(totem.Config{ID: 2, Replication: totem.Active}, tr2)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	deadline := time.After(15 * time.Second)
	sawTransitional := false
	for {
		select {
		case c := <-n1.ConfigChanges():
			if c.Transitional {
				sawTransitional = true
				continue
			}
			if len(c.Members) == 2 {
				if !sawTransitional {
					t.Fatal("regular config without preceding transitional")
				}
				return
			}
		case <-deadline:
			t.Fatal("two-member config never arrived")
		}
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	hub := totem.NewMemHub(1)
	tr, _ := hub.Join(1)
	n, err := totem.NewNode(totem.Config{ID: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	if err := n.Send([]byte("x")); !errors.Is(err, totem.ErrClosed) {
		t.Fatalf("Send after close = %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestNewNodeValidation(t *testing.T) {
	hub := totem.NewMemHub(2)
	tr, _ := hub.Join(1)
	if _, err := totem.NewNode(totem.Config{ID: 1}, nil); !errors.Is(err, totem.ErrConfig) {
		t.Fatalf("nil transport: %v", err)
	}
	if _, err := totem.NewNode(totem.Config{ID: 0}, tr); !errors.Is(err, totem.ErrConfig) {
		t.Fatalf("zero id: %v", err)
	}
	if _, err := totem.NewNode(totem.Config{ID: 1, Networks: 5}, tr); !errors.Is(err, totem.ErrConfig) {
		t.Fatalf("network mismatch: %v", err)
	}
	// ActivePassive on 2 networks violates the paper's N >= 3 rule.
	if _, err := totem.NewNode(totem.Config{ID: 1, Replication: totem.ActivePassive}, tr); !errors.Is(err, totem.ErrConfig) {
		t.Fatalf("active-passive on 2 networks: %v", err)
	}
}

func TestUDPTransportRing(t *testing.T) {
	// Three nodes on two redundant "networks", all over 127.0.0.1 with
	// dynamically assigned ports.
	const n = 3
	trs := make([]totem.Transport, n)
	addrs := make([][]string, n)
	for i := 0; i < n; i++ {
		tr, err := totem.NewUDPTransport(totem.UDPConfig{
			ID:     totem.NodeID(i + 1),
			Listen: []string{"127.0.0.1:0", "127.0.0.1:0"},
		})
		if err != nil {
			t.Fatalf("NewUDPTransport: %v", err)
		}
		defer tr.Close()
		trs[i] = tr
		addrs[i] = tr.(interface{ LocalAddrs() []string }).LocalAddrs()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if err := trs[i].(interface {
				AddPeer(totem.NodeID, []string) error
			}).AddPeer(totem.NodeID(j+1), addrs[j]); err != nil {
				t.Fatalf("AddPeer: %v", err)
			}
		}
	}
	nodes := make([]*totem.Node, n)
	for i := 0; i < n; i++ {
		node, err := totem.NewNode(totem.Config{
			ID:          totem.NodeID(i + 1),
			Replication: totem.Passive,
		}, trs[i])
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		defer node.Close()
		nodes[i] = node
	}
	waitFullRing(t, nodes, n, 20*time.Second)

	if err := nodes[0].Send([]byte("over-udp")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for _, node := range nodes {
		select {
		case d := <-node.Deliveries():
			if string(d.Payload) != "over-udp" {
				t.Fatalf("payload %q", d.Payload)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("node %v never delivered over UDP", node.ID())
		}
	}
}
