package totem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/totem-rrp/totem/internal/bulk"
	"github.com/totem-rrp/totem/internal/proto"
)

// BulkOptions tunes the sender side of SendBulk. Zero fields take
// defaults. The receiver-side limits (maximum transfer size, concurrent
// partial transfers) live in Options.SRP.
type BulkOptions struct {
	// ChunkBytes is the size of each windowed chunk (default 8192). Larger
	// chunks amortise envelope overhead; smaller ones give finer-grained
	// progress and retry units. The ring's packer fragments chunks onto the
	// wire either way.
	ChunkBytes int
	// Window is the maximum number of unacknowledged chunks in flight
	// (default 32). A chunk is acknowledged when the sender delivers its
	// own copy — ring-wide evidence that every member ordered it.
	Window int
	// Retries bounds per-chunk re-submissions under backpressure (default
	// 8). Exhausting it fails the transfer with ErrBulkRetries.
	Retries int
	// Workers is the number of goroutines submitting chunks concurrently
	// (default 2): while one blocks handing a chunk to the protocol loop,
	// another is already queueing the next.
	Workers int
}

func (o BulkOptions) withDefaults() BulkOptions {
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 8192
	}
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.Retries <= 0 {
		o.Retries = 8
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	return o
}

// Errors specific to bulk transfers.
var (
	// ErrBulkCancelled reports a transfer stopped by BulkTransfer.Cancel.
	ErrBulkCancelled = errors.New("totem: bulk transfer cancelled")
	// ErrBulkRetries reports a transfer that exhausted a chunk's retry
	// budget against sustained backpressure.
	ErrBulkRetries = bulk.ErrRetriesExhausted
)

// BulkTransfer is a handle on one in-flight SendBulk transfer.
type BulkTransfer struct {
	id    uint64
	total int64
	acked atomic.Int64

	done   chan struct{}
	err    error // written once, before done closes
	finish sync.Once

	cancel     chan struct{}
	cancelOnce sync.Once

	evs chan proto.BulkEvent
}

// ID returns the transfer's node-local identifier.
func (t *BulkTransfer) ID() uint64 { return t.id }

// Progress returns the contiguously acknowledged byte count and the total.
// Acknowledged bytes have been ordered by every current ring member; after
// a membership change the count can transiently move backwards to the last
// prefix the new configuration is known to hold.
func (t *BulkTransfer) Progress() (acked, total int64) {
	return t.acked.Load(), t.total
}

// Done returns a channel closed when the transfer completes or fails;
// check Err afterwards.
func (t *BulkTransfer) Done() <-chan struct{} { return t.done }

// Err returns nil for a completed transfer, or the terminal error. Only
// meaningful after Done is closed.
func (t *BulkTransfer) Err() error {
	select {
	case <-t.done:
		return t.err
	default:
		return nil
	}
}

// Cancel stops the transfer. Chunks already ordered by the ring are still
// delivered to receivers' reassembly state, but the transfer will never
// complete there; receivers drop the partial state when the sender leaves
// or on their partial-transfer limits. Idempotent.
func (t *BulkTransfer) Cancel() {
	t.cancelOnce.Do(func() { close(t.cancel) })
}

// send hands a signal to the manager, abandoning it if the transfer ends
// first — a resolved transfer must not wedge the dispatcher.
func (t *BulkTransfer) send(ev proto.BulkEvent) {
	select {
	case t.evs <- ev:
	case <-t.done:
	}
}

func (t *BulkTransfer) complete(err error) {
	t.finish.Do(func() {
		t.err = err
		close(t.done)
	})
}

// SendBulk streams payload to the ring on the rate-limited bulk lane and
// returns a handle tracking its progress. The transfer is chunked and
// window-flow-controlled: at most Window chunks are unacknowledged at
// once, and the lane yields ring budget to Send traffic whenever other
// members have interactive backlog, so small-message latency survives a
// saturating transfer. Every member — the sender included — receives the
// completed transfer as one Delivery with Bulk set and the whole payload.
// Across membership changes the sender rewinds to its last contiguously
// acknowledged offset and re-sends; receivers deduplicate, so the transfer
// is delivered exactly once per member that stays.
//
// The payload is owned by the node until Done closes. On a multi-shard
// node the transfer runs on shard 0. SendBulk is incompatible with
// CrossOrder (the merge envelope does not wrap the bulk lane) and returns
// ErrConfig there, as it does for an empty payload or one exceeding the
// receiver-side Options.SRP.MaxBulkTransfer limit.
func (n *Node) SendBulk(payload []byte) (*BulkTransfer, error) {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if n.crossOrder {
		return nil, fmt.Errorf("%w: SendBulk is incompatible with CrossOrder", ErrConfig)
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty bulk payload", ErrConfig)
	}
	if len(payload) > n.bulkMax {
		return nil, fmt.Errorf("%w: bulk payload %d bytes exceeds MaxBulkTransfer %d", ErrConfig, len(payload), n.bulkMax)
	}
	t := &BulkTransfer{
		id:     n.bulkNextID.Add(1),
		total:  int64(len(payload)),
		done:   make(chan struct{}),
		cancel: make(chan struct{}),
		evs:    make(chan proto.BulkEvent, 2*n.bulkOpts.Window+8),
	}
	n.bulkMu.Lock()
	if n.bulkXfers == nil {
		n.bulkXfers = make(map[uint64]*BulkTransfer)
	}
	n.bulkXfers[t.id] = t
	n.bulkMu.Unlock()
	go n.runBulkManager(t, payload)
	return t, nil
}

// bulkDispatch fans the runtime's bulk-signal stream out to the live
// transfers: acknowledgements by transfer id, reconfiguration notices to
// everyone. It runs for the node's lifetime and, when the stream closes
// (node Close), fails whatever transfers remain.
func (n *Node) bulkDispatch() {
	for ev := range n.rts[0].BulkEvents() {
		switch ev.Kind {
		case proto.BulkAcked:
			n.bulkMu.Lock()
			t := n.bulkXfers[ev.ID]
			n.bulkMu.Unlock()
			if t != nil {
				t.send(ev)
			}
		case proto.BulkReconfig:
			n.bulkMu.Lock()
			ts := make([]*BulkTransfer, 0, len(n.bulkXfers))
			for _, t := range n.bulkXfers {
				ts = append(ts, t)
			}
			n.bulkMu.Unlock()
			for _, t := range ts {
				t.send(ev)
			}
		}
	}
	close(n.bulkClosed)
}

// runBulkManager drives one transfer: it feeds a bounded worker pool from
// the window cursor, applies acknowledgements and reconfiguration rewinds
// to the send state, and resolves the handle. All SendState access stays
// on this goroutine; workers only push chunks into the protocol loop.
func (n *Node) runBulkManager(t *BulkTransfer, payload []byte) {
	opts := n.bulkOpts
	s := bulk.NewSendState(len(payload), opts.ChunkBytes, opts.Window, opts.Retries)

	type result struct {
		idx int
		ok  bool
	}
	// The buffers only smooth throughput; correctness never depends on
	// their size because the manager hands work out inside its select and
	// so keeps draining results and acks even when both channels are full.
	// (A reconfiguration refills the window while pre-reconfig entries can
	// still be queued, so a blocking `work <-` here could deadlock against
	// workers blocked on a full results channel.)
	work := make(chan int, opts.Window)
	results := make(chan result, opts.Window)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				off, end := s.Range(i)
				ok := n.rts[0].SubmitBulk(t.id, uint64(off), uint64(len(payload)), payload[off:end])
				if !ok {
					// Backpressure: the lane queue is full. Back off before
					// reporting so the retry does not spin against it.
					time.Sleep(200 * time.Microsecond)
				}
				results <- result{i, ok}
			}
		}()
	}

	finish := func(err error) {
		n.bulkMu.Lock()
		delete(n.bulkXfers, t.id)
		n.bulkMu.Unlock()
		t.complete(err)
		close(work)
		go func() {
			wg.Wait()
			close(results)
		}()
		for range results {
		}
	}

	// todo holds window slots claimed from the cursor but not yet handed to
	// a worker.
	var todo []int
	for {
		if err := s.Err(); err != nil {
			finish(err)
			return
		}
		if s.Done() {
			t.acked.Store(t.total)
			finish(nil)
			return
		}
		for {
			i, ok := s.Next()
			if !ok {
				break
			}
			todo = append(todo, i)
		}
		var workCh chan int
		var next int
		if len(todo) > 0 {
			workCh = work
			next = todo[0]
		}
		select {
		case workCh <- next:
			todo = todo[1:]
		case ev := <-t.evs:
			switch ev.Kind {
			case proto.BulkAcked:
				s.Ack(s.ChunkAt(int(ev.Offset)))
				acked, _ := s.Progress()
				t.acked.Store(int64(acked))
			case proto.BulkReconfig:
				// Unhanded slots go back through the cursor with everything
				// else the rewind requeues.
				todo = todo[:0]
				s.Reconfig()
				acked, _ := s.Progress()
				t.acked.Store(int64(acked))
			}
		case res := <-results:
			if !res.ok {
				s.Fail(res.idx) // requeues, or poisons s.Err on budget exhaustion
			}
		case <-t.cancel:
			finish(ErrBulkCancelled)
			return
		case <-n.bulkClosed:
			finish(ErrClosed)
			return
		}
	}
}
