package totem_test

import (
	"fmt"
	"time"

	totem "github.com/totem-rrp/totem"
)

// Example demonstrates the minimal lifecycle: two nodes on two redundant
// in-process networks exchange one totally-ordered message.
func Example() {
	hub := totem.NewMemHub(2)

	var nodes []*totem.Node
	for id := totem.NodeID(1); id <= 2; id++ {
		tr, err := hub.Join(id)
		if err != nil {
			panic(err)
		}
		n, err := totem.NewNode(totem.Config{
			ID:          id,
			Networks:    2,
			Replication: totem.Active,
		}, tr)
		if err != nil {
			panic(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}

	// Wait until both nodes share one ring.
	for {
		_, m0 := nodes[0].Ring()
		_, m1 := nodes[1].Ring()
		if len(m0) == 2 && len(m1) == 2 && nodes[0].Operational() && nodes[1].Operational() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := nodes[0].Send([]byte("hello")); err != nil {
		panic(err)
	}
	d := <-nodes[1].Deliveries()
	fmt.Printf("%v delivered %q from %v\n", nodes[1].ID(), d.Payload, d.Sender)
	// Output: n2 delivered "hello" from n1
}

// ExampleConfig_tune shows how to adjust the low-level protocol knobs —
// here, safe delivery with a larger flow-control window and a faster
// network-fault verdict.
func ExampleConfig_tune() {
	hub := totem.NewMemHub(2)
	tr, _ := hub.Join(1)
	n, err := totem.NewNode(totem.Config{
		ID:          1,
		Networks:    2,
		Replication: totem.Passive,
		Delivery:    totem.Safe,
		Tune: func(o *totem.Options) {
			o.SRP.WindowSize = 160
			o.SRP.MaxPerVisit = 40
			o.RRP.DiffThreshold = 20
		},
	}, tr)
	if err != nil {
		panic(err)
	}
	defer n.Close()
	fmt.Println("tuned node up")
	// Output: tuned node up
}
